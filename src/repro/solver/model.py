"""A small modelling layer for 0-1 integer programs.

The ORA allocator expresses every register-allocation decision as a 0-1
variable with a cost, tied together by linear constraints (paper §2).
This module is the neutral representation those decisions compile to;
solver backends (:mod:`repro.solver.scipy_backend`,
:mod:`repro.solver.branch_bound`) consume it.

Variables carry their objective coefficient directly (each allocation
action has exactly one cost), which matches the paper's formulation and
keeps model construction linear in the number of actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable


class Sense(Enum):
    LE = "<="
    GE = ">="
    EQ = "=="

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class Variable:
    """A 0-1 decision variable."""

    index: int
    name: str
    cost: float = 0.0
    #: fixed value (0 or 1) when the variable is decided at build time
    fixed: int | None = None

    def __hash__(self) -> int:
        return self.index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.index == self.index

    def __str__(self) -> str:
        return self.name


#: A linear term list: [(coefficient, variable), ...]
Terms = list[tuple[float, Variable]]


@dataclass(slots=True)
class Constraint:
    name: str
    terms: Terms
    sense: Sense
    rhs: float

    def __str__(self) -> str:
        lhs = " + ".join(
            (f"{c:g}*{v.name}" if c != 1 else v.name)
            for c, v in self.terms
        )
        return f"{lhs} {self.sense} {self.rhs:g}"


class IPModel:
    """A 0-1 integer program: minimise total cost subject to constraints."""

    def __init__(self, name: str = "ip") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        #: constant added to the objective (costs of unavoidable actions)
        self.objective_constant: float = 0.0
        #: indices of variables that appear (live) in some constraint —
        #: those can no longer be fixed at build time (see :meth:`fix`)
        self._constrained: set[int] = set()
        #: flat COO coefficient buffers, maintained incrementally so the
        #: array form (:meth:`matrix`) is one bulk numpy conversion away;
        #: columns are *original* variable indices
        self._mx_rows: list[int] = []
        self._mx_cols: list[int] = []
        self._mx_data: list[float] = []
        self._n_fixed = 0
        self._matrix = None

    # -- construction ---------------------------------------------------

    def add_var(self, name: str, cost: float = 0.0) -> Variable:
        var = Variable(index=len(self.variables), name=name, cost=cost)
        self.variables.append(var)
        self._matrix = None
        return var

    def add_vars(
        self, names: Iterable[str], costs: Iterable[float]
    ) -> list[Variable]:
        """Bulk :meth:`add_var` for array-built variable families."""
        base = len(self.variables)
        added = [
            Variable(index=base + k, name=n, cost=c)
            for k, (n, c) in enumerate(zip(names, costs))
        ]
        self.variables.extend(added)
        self._matrix = None
        return added

    def add_constraint(
        self,
        terms: Iterable[tuple[float, Variable]],
        sense: Sense,
        rhs: float,
        name: str = "",
    ) -> Constraint | None:
        """Add a constraint, folding in fixed variables.

        Constraints that become vacuously true after substituting fixed
        variables are dropped (returns ``None``); constraints that become
        unsatisfiable raise :class:`InfeasibleModel`.
        """
        live: Terms = []
        rhs_eff = rhs
        for coef, var in terms:
            if coef == 0:
                continue
            if var.fixed is not None:
                rhs_eff -= coef * var.fixed
            else:
                live.append((coef, var))
        if not live:
            ok = {
                Sense.LE: 0 <= rhs_eff + 1e-9,
                Sense.GE: 0 >= rhs_eff - 1e-9,
                Sense.EQ: abs(rhs_eff) <= 1e-9,
            }[sense]
            if not ok:
                raise InfeasibleModel(
                    f"constraint {name or '<anon>'} is unsatisfiable "
                    f"after fixings"
                )
            return None
        constraint = Constraint(
            name=name or f"c{len(self.constraints)}",
            terms=live,
            sense=sense,
            rhs=rhs_eff,
        )
        row = len(self.constraints)
        self.constraints.append(constraint)
        self._constrained.update(v.index for _, v in live)
        for coef, var in live:
            self._mx_rows.append(row)
            self._mx_cols.append(var.index)
            self._mx_data.append(coef)
        self._matrix = None
        return constraint

    def add_constraints_arrays(
        self,
        indptr,
        cols,
        coefs,
        senses,
        rhss,
        names: Iterable[str] | None = None,
    ) -> list["Constraint | None"]:
        """Batch :meth:`add_constraint` over index/coefficient arrays.

        Row ``k`` holds terms ``coefs[indptr[k]:indptr[k+1]]`` over the
        original variable indices ``cols[indptr[k]:indptr[k+1]]``, with
        sense ``senses[k]`` and right-hand side ``rhss[k]``.  Semantics
        match the scalar path exactly — zero coefficients dropped, fixed
        variables folded into the right-hand side, vacuous rows dropped
        (``None`` in the result) or :class:`InfeasibleModel` raised —
        so constraint families can be emitted as arrays without
        changing the model that results.
        """
        name_list = list(names) if names is not None else None
        out: list[Constraint | None] = []
        variables = self.variables
        for k in range(len(indptr) - 1):
            lo, hi = int(indptr[k]), int(indptr[k + 1])
            terms = [
                (float(coefs[j]), variables[int(cols[j])])
                for j in range(lo, hi)
            ]
            out.append(
                self.add_constraint(
                    terms,
                    senses[k],
                    float(rhss[k]),
                    name=name_list[k] if name_list else "",
                )
            )
        return out

    def fix(self, var: Variable, value: int) -> None:
        """Decide a variable at build time (0 or 1).

        Fixed variables do not reach the solver; their cost (if fixed to
        1) moves into the objective constant.  Must be called before the
        variable appears in any constraint: constraints fold fixed
        variables into their right-hand side at construction, so a late
        fix would leave stale terms behind and silently corrupt the
        model.  That ordering is enforced here.
        """
        if value not in (0, 1):
            raise ValueError("0-1 variable can only be fixed to 0 or 1")
        if var.fixed is not None and var.fixed != value:
            raise InfeasibleModel(
                f"variable {var.name} fixed to both values"
            )
        if var.fixed is None:
            if var.index in self._constrained:
                raise ValueError(
                    f"cannot fix {var.name}: it already appears in a "
                    f"constraint (fix variables before constraining "
                    f"them)"
                )
            var.fixed = value
            self._n_fixed += 1
            self._matrix = None
            if value == 1:
                self.objective_constant += var.cost

    # -- stats ------------------------------------------------------------

    @property
    def n_vars(self) -> int:
        """Number of *free* (unfixed) decision variables."""
        return sum(1 for v in self.variables if v.fixed is None)

    @property
    def n_constraints(self) -> int:
        return len(self.constraints)

    def free_variables(self) -> list[Variable]:
        return [v for v in self.variables if v.fixed is None]

    def matrix(self):
        """The array form of this model (:class:`MatrixModel`).

        With the array core enabled the CSR form is assembled once
        from the flat coefficient buffers and cached until the model
        changes; with ``REPRO_ARRAY_CORE=0`` it is rebuilt on every
        call by the legacy per-term walk, reproducing the conversion
        cost the object pipeline used to pay on every solve.
        """
        from .matrix import MatrixModel, array_core_enabled

        if not array_core_enabled():
            return MatrixModel.from_ip(self)
        if self._matrix is None:
            self._matrix = MatrixModel.from_ip(self)
        return self._matrix

    def evaluate(self, values: dict[int, int]) -> float:
        """Objective value of an assignment {var index: 0/1}.

        Indices of fixed variables may be omitted (their fixed value is
        used) — presolve-reduced solutions naturally cover only the
        free variables.  A missing *free* index is still an error, and
        so is an index outside the model's variable range: silently
        ignoring one used to mask callers evaluating a solution
        against the wrong model.
        """
        n = len(self.variables)
        for idx in values:
            if not 0 <= idx < n:
                raise IndexError(
                    f"model {self.name}: assignment references "
                    f"variable index {idx}, but the model has "
                    f"{n} variables"
                )
        total = self.objective_constant
        for v in self.variables:
            val = self._value_of(v, values)
            total += v.cost * val
        return total

    @staticmethod
    def _value_of(v: Variable, values: dict[int, int]) -> int:
        val = values.get(v.index)
        if val is None:
            if v.fixed is None:
                raise KeyError(
                    f"assignment omits free variable {v.name} "
                    f"(index {v.index})"
                )
            val = v.fixed
        return val

    def check(self, values: dict[int, int], tol: float = 1e-6) -> bool:
        """Is the assignment feasible for every constraint?

        Like :meth:`evaluate`, missing fixed-variable indices are read
        as their fixed value.
        """
        for con in self.constraints:
            lhs = sum(
                c * self._value_of(v, values) for c, v in con.terms
            )
            if con.sense is Sense.LE and lhs > con.rhs + tol:
                return False
            if con.sense is Sense.GE and lhs < con.rhs - tol:
                return False
            if con.sense is Sense.EQ and abs(lhs - con.rhs) > tol:
                return False
        return True

    def __str__(self) -> str:
        lines = [f"min  {self.objective_constant:g} + sum(cost*x)"]
        for v in self.variables:
            tag = f" [fixed={v.fixed}]" if v.fixed is not None else ""
            lines.append(f"  var {v.name} cost={v.cost:g}{tag}")
        lines.extend(f"  s.t. {c}" for c in self.constraints)
        return "\n".join(lines)


class InfeasibleModel(Exception):
    """Raised when build-time fixings already contradict a constraint."""
