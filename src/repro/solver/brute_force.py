"""Exhaustive 0-1 enumeration — the testing oracle for the real solvers.

Only usable for tiny models (the test suite keeps it under ~20 free
variables) but unconditionally correct, which makes it the ground truth
for property-based solver tests.
"""

from __future__ import annotations

import itertools
import time

from .model import IPModel
from .result import SolveResult, SolveStatus, complete_values

MAX_BRUTE_VARS = 24


def solve_brute_force(model: IPModel) -> SolveResult:
    free = model.free_variables()
    if len(free) > MAX_BRUTE_VARS:
        raise ValueError(
            f"brute force limited to {MAX_BRUTE_VARS} free variables, "
            f"model has {len(free)}"
        )
    start = time.perf_counter()
    best_values = None
    best_obj = float("inf")
    for bits in itertools.product((0, 1), repeat=len(free)):
        values = complete_values(
            model, {v.index: b for v, b in zip(free, bits)}
        )
        if not model.check(values):
            continue
        obj = model.evaluate(values)
        if obj < best_obj:
            best_obj = obj
            best_values = values
    elapsed = time.perf_counter() - start
    if best_values is None:
        return SolveResult(
            status=SolveStatus.INFEASIBLE,
            solve_seconds=elapsed,
            backend="brute-force",
        )
    return SolveResult(
        status=SolveStatus.OPTIMAL,
        values=best_values,
        objective=best_obj,
        solve_seconds=elapsed,
        backend="brute-force",
    )
