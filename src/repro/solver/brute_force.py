"""Exhaustive 0-1 enumeration — the testing oracle for the real solvers.

Only usable for tiny models (the test suite keeps it under ~20 free
variables) but unconditionally correct, which makes it the ground truth
for property-based solver tests.

Like the other two backends it honors ``time_limit``: when the clock
runs out mid-enumeration it returns the best incumbent found so far as
``FEASIBLE`` with ``timed_out`` set (or ``UNSOLVED`` if none exists)
instead of silently enumerating to completion.
"""

from __future__ import annotations

import itertools
import time

from .model import IPModel
from .result import SolveResult, SolveStatus, complete_values

MAX_BRUTE_VARS = 24

#: check the clock only every this many enumerated points
_CLOCK_STRIDE = 1024


def solve_brute_force(
    model: IPModel,
    time_limit: float | None = None,
    warm_start: dict[str, int] | None = None,
) -> SolveResult:
    """Enumerate every 0-1 point.  ``warm_start`` is accepted for
    interface parity but ignored — enumeration visits everything
    regardless."""
    del warm_start
    free = model.free_variables()
    if len(free) > MAX_BRUTE_VARS:
        raise ValueError(
            f"brute force limited to {MAX_BRUTE_VARS} free variables, "
            f"model has {len(free)}"
        )
    start = time.perf_counter()
    best_values = None
    best_obj = float("inf")
    timed_out = False
    for count, bits in enumerate(
        itertools.product((0, 1), repeat=len(free))
    ):
        if (
            time_limit is not None
            and count % _CLOCK_STRIDE == 0
            and time.perf_counter() - start > time_limit
        ):
            timed_out = True
            break
        values = complete_values(
            model, {v.index: b for v, b in zip(free, bits)}
        )
        if not model.check(values):
            continue
        obj = model.evaluate(values)
        if obj < best_obj:
            best_obj = obj
            best_values = values
    elapsed = time.perf_counter() - start
    if best_values is None:
        return SolveResult(
            status=SolveStatus.UNSOLVED if timed_out
            else SolveStatus.INFEASIBLE,
            solve_seconds=elapsed,
            backend="brute-force",
            timed_out=timed_out,
        )
    return SolveResult(
        status=SolveStatus.FEASIBLE if timed_out else SolveStatus.OPTIMAL,
        values=best_values,
        objective=best_obj,
        solve_seconds=elapsed,
        backend="brute-force",
        timed_out=timed_out,
    )
