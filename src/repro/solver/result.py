"""Solver results and status codes."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .model import IPModel


class SolveStatus(Enum):
    OPTIMAL = "optimal"
    #: a feasible incumbent was found but optimality was not proven
    #: within the limits (the paper's "solved" but not "optimal" bucket)
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    #: limits hit with no incumbent at all
    UNSOLVED = "unsolved"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass(slots=True)
class SolveResult:
    status: SolveStatus
    #: values for every variable index (fixed ones included); empty when
    #: no solution exists
    values: dict[int, int] = field(default_factory=dict)
    objective: float = float("inf")
    solve_seconds: float = 0.0
    #: branch-and-bound nodes explored (backend-dependent)
    nodes: int = 0
    #: LP relaxations solved during the search (backend-dependent)
    lp_relaxations: int = 0
    #: incumbent-update timeline: [(seconds since solve start,
    #: objective)] each time the best known solution improved
    incumbents: list[tuple[float, float]] = field(default_factory=list)
    backend: str = ""
    #: the search stopped on its time (or node) budget rather than by
    #: proving optimality/infeasibility — a FEASIBLE result with this
    #: set is the paper's "accept the incumbent on TIME_LIMIT" case
    timed_out: bool = False
    #: wall-clock spent assembling solver-ready matrix form(s) for this
    #: solve (presolve CSR build + per-submodel backend conversion);
    #: with the array core on, cached builds cost ~0 after the first
    build_seconds: float = 0.0
    #: :class:`repro.presolve.PresolveSummary` when the model went
    #: through the reduction pipeline; None for a direct backend solve.
    #: (Typed loosely to keep the solver layer import-cycle free.)
    presolve: object | None = None

    def value(self, var) -> int:
        return self.values[var.index]


def complete_values(
    model: IPModel, free_values: dict[int, int]
) -> dict[int, int]:
    """Merge solver output for free variables with build-time fixings."""
    values = dict(free_values)
    for v in model.variables:
        if v.fixed is not None:
            values[v.index] = v.fixed
    return values
