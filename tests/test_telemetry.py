"""Tests for the telemetry layer (repro.telemetry).

Covers the streaming histograms (bucketed percentiles against the
exact sorted-list oracle, associative cross-process merge, the
zero-overhead disabled path), Prometheus text rendering with correct
cumulative buckets, the request-lifecycle trace plumbing through the
service, per-tenant stats, trace_id on every reply path, and the
loss-proof counter/histogram merge-back under a real SIGKILL.
"""

import json
import os
import random
import subprocess
import sys
import urllib.request

import pytest

from repro.core import AllocatorConfig
from repro.engine import AllocationEngine, EngineConfig
from repro.lang import compile_program
from repro.obs import reset_stats, set_stats_enabled, snapshot
from repro.service import ServerThread, ServiceClient, ServiceConfig
from repro.service.protocol import E_PARSE, E_TOO_LARGE
from repro.target import x86_target
from repro.telemetry import (
    DEFAULT_BOUNDS,
    Histogram,
    RequestTrace,
    TraceStore,
    define_histogram,
    histogram_delta,
    histogram_snapshot,
    log_bounds,
    merge_histograms,
    percentile_of,
    render_prometheus,
    reset_histograms,
)

SOURCE = """
int helper(int a) { return a * 3; }
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i += 1) { s += helper(i); }
    return s;
}
"""


@pytest.fixture(autouse=True)
def clean_telemetry():
    set_stats_enabled(True)
    reset_stats()
    reset_histograms()
    yield
    set_stats_enabled(False)
    reset_stats()
    reset_histograms()


def client_for(handle: ServerThread, **kwargs) -> ServiceClient:
    return ServiceClient("127.0.0.1", handle.port, **kwargs)


# -- histograms -----------------------------------------------------------


class TestHistogram:
    def test_log_bounds_span_queue_waits_and_solve_budgets(self):
        assert DEFAULT_BOUNDS[0] == pytest.approx(1e-4)
        assert DEFAULT_BOUNDS[-1] == pytest.approx(1024.0, rel=0.5)
        assert list(DEFAULT_BOUNDS) == sorted(DEFAULT_BOUNDS)

    def test_log_bounds_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            log_bounds(lo=0.0)
        with pytest.raises(ValueError):
            log_bounds(lo=1.0, hi=0.5)

    def test_observe_counts_and_sum(self):
        h = Histogram("t")
        for v in (0.0005, 0.005, 0.005, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(5.0105)
        assert sum(h.counts) == 4

    def test_cumulative_ends_at_count(self):
        h = Histogram("t")
        for v in (1e-5, 0.01, 0.5, 2000.0):  # incl. under- & overflow
            h.observe(v)
        cum = h.cumulative()
        assert cum[-1] == h.count == 4
        assert cum == sorted(cum)

    def test_percentile_against_sorted_list_oracle(self):
        """The bucketed estimate must land in the same bucket as the
        exact sorted-list percentile, for randomized samples."""
        rng = random.Random(1998)
        h = Histogram("t")
        samples = [10 ** rng.uniform(-3.5, 2.5) for _ in range(500)]
        for v in samples:
            h.observe(v)

        def bucket_of(value):
            lo = 0
            for i, b in enumerate(h.bounds):
                if value <= b:
                    return i
                lo = i
            return len(h.bounds)

        for q in (10, 50, 90, 95, 99):
            exact = percentile_of(samples, q)
            est = h.percentile(q)
            # same bucket, or the shared edge of an adjacent one
            assert abs(bucket_of(est) - bucket_of(exact)) <= 1, (
                q, exact, est
            )

    def test_percentile_of_oracle_basics(self):
        assert percentile_of([], 50) == 0.0
        assert percentile_of([7.0], 99) == 7.0
        assert percentile_of([1.0, 3.0], 50) == pytest.approx(2.0)
        assert percentile_of([1, 2, 3, 4, 5], 0) == 1.0
        assert percentile_of([1, 2, 3, 4, 5], 100) == 5.0

    def test_merge_is_associative_and_exact(self):
        rng = random.Random(7)
        samples = [10 ** rng.uniform(-4, 3) for _ in range(300)]
        parts = [samples[0::3], samples[1::3], samples[2::3]]
        hists = []
        for part in parts:
            h = Histogram("t")
            for v in part:
                h.observe(v)
            hists.append(h)
        # (a+b)+c
        left = Histogram("t")
        left.merge(hists[0].snapshot())
        left.merge(hists[1].snapshot())
        left.merge(hists[2].snapshot())
        # a+(c+b)
        right = Histogram("t")
        tail = Histogram("t")
        tail.merge(hists[2].snapshot())
        tail.merge(hists[1].snapshot())
        right.merge(hists[0].snapshot())
        right.merge(tail.snapshot())
        # one histogram that saw everything
        whole = Histogram("t")
        for v in samples:
            whole.observe(v)
        assert left.counts == right.counts == whole.counts
        assert left.count == right.count == whole.count == len(samples)
        assert left.sum == pytest.approx(whole.sum)
        assert right.sum == pytest.approx(whole.sum)

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram("t")
        b = Histogram("t", bounds=log_bounds(per_decade=2))
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_delta_roundtrip_reproduces_observations(self):
        h = define_histogram("delta.test")
        h.observe(0.01)
        before = histogram_snapshot(skip_empty=False)
        h.observe(0.5)
        h.observe(3.0)
        delta = histogram_delta(before, histogram_snapshot(
            skip_empty=False
        ))
        assert delta["delta.test"]["count"] == 2
        assert delta["delta.test"]["sum"] == pytest.approx(3.5)
        # merging the delta elsewhere reproduces exactly those two
        other = Histogram("delta.test")
        other.merge(delta["delta.test"])
        assert other.count == 2
        assert sum(other.counts) == 2

    def test_delta_skips_unchanged_histograms(self):
        h = define_histogram("idle.test")
        h.observe(1.0)
        before = histogram_snapshot(skip_empty=False)
        delta = histogram_delta(before, histogram_snapshot(
            skip_empty=False
        ))
        assert "idle.test" not in delta

    def test_disabled_observe_is_a_noop(self):
        set_stats_enabled(False)
        h = define_histogram("off.test")
        for _ in range(100):
            h.observe(0.5)
        assert h.count == 0
        assert h.sum == 0.0
        assert sum(h.counts) == 0

    def test_disabled_merge_is_a_noop(self):
        h = define_histogram("offmerge.test")
        h._observe(1.0)
        delta = histogram_snapshot(skip_empty=False)
        reset_histograms()
        set_stats_enabled(False)
        merge_histograms(delta)
        assert define_histogram("offmerge.test").count == 0


# -- Prometheus rendering -------------------------------------------------


class TestPrometheus:
    def test_histogram_exposition_cumulative_buckets(self):
        h = define_histogram("probe.latency", "test probe")
        for v in (0.0005, 0.01, 0.01, 0.5, 2000.0):
            h.observe(v)
        text = render_prometheus(
            counters={}, histograms=histogram_snapshot(skip_empty=False)
        )
        lines = [
            line for line in text.splitlines()
            if line.startswith("repro_probe_latency_seconds_bucket")
        ]
        assert lines, text
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert lines[-1].startswith(
            'repro_probe_latency_seconds_bucket{le="+Inf"}'
        )
        assert counts[-1] == 5
        assert "repro_probe_latency_seconds_count 5" in text
        assert "# TYPE repro_probe_latency_seconds histogram" in text

    def test_counter_and_labelled_gauge_rows(self):
        text = render_prometheus(
            counters={"ip.solved": 3.0},
            histograms={},
            labelled={"tenant.queue_depth": {
                (("tenant", "acme"),): 2.0,
            }},
        )
        assert "repro_ip_solved_total 3" in text
        assert 'repro_tenant_queue_depth{tenant="acme"} 2' in text


# -- lifecycle primitives -------------------------------------------------


class TestLifecycle:
    def test_stages_abut_and_finish_seals_root(self):
        trace = RequestTrace("T-1", tenant="t")
        trace.stage("admission", queue_depth=0)
        trace.stage("queue", seconds=0.25)
        tree = trace.finish("ok").to_dict()
        names = [c["name"] for c in tree["children"]]
        assert names == ["admission", "queue"]
        assert tree["meta"]["status"] == "ok"
        assert tree["meta"]["trace_id"] == "T-1"
        queue = tree["children"][1]
        assert queue["seconds"] == pytest.approx(0.25)

    def test_store_is_bounded_and_keyed(self):
        store = TraceStore(keep=2)
        for i in range(4):
            store.put(f"T-{i}", {"name": f"t{i}"})
        assert len(store) == 2
        assert store.get("T-0") is None
        assert store.get("T-3") == {"name": "t3"}
        assert store.last() == {"name": "t3"}
        assert store.ids() == ["T-2", "T-3"]


# -- cross-process merge through the engine -------------------------------


class TestEngineMergeBack:
    def test_worker_histograms_merge_exactly(self):
        module = compile_program(SOURCE, name="merge")
        engine = AllocationEngine(
            x86_target(),
            AllocatorConfig(time_limit=30.0),
            EngineConfig(jobs=2),
        )
        outcomes = list(engine.allocate_module(list(module)))
        n = len(list(module))
        assert len(outcomes) == n
        hists = histogram_snapshot()
        assert hists["ip.solve_time"]["count"] == n
        assert snapshot().get("ip.solved") == n
        # presolve ran once per function, in the workers
        assert hists["ip.presolve_time"]["count"] == n


# -- the service: stitched traces, metrics, tenants -----------------------


@pytest.fixture()
def make_server():
    handles = []

    def factory(**kwargs) -> ServerThread:
        kwargs.setdefault("queue_capacity", 8)
        kwargs.setdefault("max_in_flight", 2)
        config = ServiceConfig(**kwargs)
        handle = ServerThread(config).start()
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        try:
            handle.drain(timeout=60.0)
        except RuntimeError:
            pass


class TestServiceTelemetry:
    def test_traced_request_yields_one_stitched_tree(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            resp = ServiceClient.check(client.allocate(
                source=SOURCE, trace_id="T-stitch", tenant="acme"
            ))
            assert resp["trace_id"] == "T-stitch"
            got = ServiceClient.check(client.trace("T-stitch"))
        tree = got["result"]["trace"]
        assert tree["name"] == "request"
        assert tree["meta"]["trace_id"] == "T-stitch"
        assert tree["meta"]["status"] == "ok"
        names = [c["name"] for c in tree["children"]]
        for stage in ("admission", "queue", "batch-assembly",
                      "solve", "reply"):
            assert stage in names, names
        solve = tree["children"][names.index("solve")]
        # engine spans are grafted under the solve stage
        sub = [c["name"] for c in solve.get("children", [])]
        assert "engine" in sub, sub
        assert "T-stitch" in got["result"]["ids"]

    def test_untraced_request_allocates_no_trace(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            ServiceClient.check(client.allocate(source=SOURCE))
            got = ServiceClient.check(client.trace())
        assert got["result"]["trace"] is None
        assert got["result"]["ids"] == []
        assert len(handle.server.scheduler.traces) == 0

    def test_latencies_land_in_histograms(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            ServiceClient.check(client.allocate(source=SOURCE))
        hists = histogram_snapshot()
        for name in ("service.queue_wait", "service.batch_assembly",
                     "service.batch_solve", "service.request_latency"):
            assert hists[name]["count"] >= 1, name

    def test_metrics_verb_renders_prometheus_text(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            ServiceClient.check(client.allocate(source=SOURCE))
            got = ServiceClient.check(client.metrics())
        result = got["result"]
        assert result["content_type"].startswith("text/plain")
        text = result["text"]
        buckets = [
            line for line in text.splitlines()
            if line.startswith(
                "repro_service_request_latency_seconds_bucket"
            )
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts and counts == sorted(counts)
        assert counts[-1] >= 1

    def test_metrics_http_sidecar(self, make_server):
        handle = make_server(metrics_port=0)
        port = handle.server.metrics_port
        assert port
        with client_for(handle) as client:
            ServiceClient.check(client.allocate(source=SOURCE))
        body = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ).read().decode()
        assert "repro_service_queue_wait_seconds_count" in body
        health = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=10
        ).read()
        assert health == b"ok\n"

    def test_stats_verb_reports_tenants(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            ServiceClient.check(client.allocate(
                source=SOURCE, tenant="acme"
            ))
            got = ServiceClient.check(client.stats())
        tenants = got["result"]["tenants"]
        assert tenants["acme"]["admitted"] == 1
        assert tenants["acme"]["completed"] == 1
        assert tenants["acme"]["queue_depth"] == 0
        assert tenants["acme"]["cache_occupancy"] >= 1
        assert tenants["acme"]["functions"] >= 1

    def test_too_large_reply_carries_trace_id(self, make_server):
        handle = make_server(max_request_bytes=256)
        with client_for(handle) as client:
            resp = client.allocate(
                source=SOURCE + "// " + "x" * 512,
                trace_id="T-big",
            )
        assert not resp["ok"]
        assert resp["error"]["code"] == E_TOO_LARGE
        assert resp["trace_id"] == "T-big"

    def test_parse_error_reply_salvages_trace_id(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            client._file.write(
                b'{"verb": "allocate", "trace_id": "T-mangled", '
                b'NOT JSON\n'
            )
            client._file.flush()
            line = client._file.readline(1 << 20)
        resp = json.loads(line)
        assert not resp["ok"]
        assert resp["error"]["code"] == E_PARSE
        assert resp["trace_id"] == "T-mangled"


# -- loss-proof merge under a real SIGKILL (exact counts) -----------------

SIGKILL_EXACT_SCRIPT = r"""
import os, signal, sys, threading, time

from repro.core import AllocatorConfig
from repro.engine import AllocationEngine, EngineConfig
from repro.lang import compile_program
from repro.obs import set_stats_enabled, snapshot
from repro.target import x86_target
from repro.telemetry import histogram_snapshot

set_stats_enabled(True)

SOURCE = """ + '"""' + """
int f0(int a) { return a * 3 + 1; }
int f1(int a, int b) { int t = a * b; return t + a - b; }
int f2(int a) { int s = 0; for (int i = 0; i < a; i += 1) { s += i; } return s; }
int f3(int a, int b) { return (a + b) * (a - b); }
int f4(int a) { return a * a + a; }
int main(int n) { return f0(n) + f1(n, 2) + f2(n) + f3(n, 1) + f4(n); }
""" + '"""' + r"""

module = compile_program(SOURCE, name="exact")
engine = AllocationEngine(
    x86_target(),
    AllocatorConfig(time_limit=30.0),
    EngineConfig(jobs=2, retries=8),
)


def children():
    out = []
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            with open(f"/proc/{pid}/stat") as h:
                parts = h.read().split()
            if int(parts[3]) == os.getpid():
                out.append(int(pid))
        except (OSError, IndexError, ValueError):
            pass
    return out


def assassin():
    # SIGKILL a live pool worker twice, early in the run, then stop:
    # the engine must retry the lost jobs and end with EXACT counts.
    kills = 0
    deadline = time.monotonic() + 10.0
    while kills < 2 and time.monotonic() < deadline and not done.is_set():
        kids = children()
        if kids:
            try:
                os.kill(kids[0], signal.SIGKILL)
                kills += 1
            except (ProcessLookupError, PermissionError):
                pass
            time.sleep(0.2)
        else:
            time.sleep(0.005)


done = threading.Event()
killer = threading.Thread(target=assassin, daemon=True)
killer.start()
outcomes = list(engine.allocate_module(list(module)))
done.set()
killer.join(timeout=5.0)

n = len(list(module))
assert len(outcomes) == n, "functions dropped"
counters = snapshot()
solved = counters.get("ip.solved", 0)
fallbacks = counters.get("engine.fallbacks", 0)
# Every function either solved exactly once or degraded exactly once:
# a retried job must not double-merge its worker's counters, and a
# killed worker's lost job must re-merge on the retry (no loss).
assert solved + fallbacks == n, (solved, fallbacks, counters)
hist = histogram_snapshot().get("ip.solve_time", {"count": 0})
assert hist["count"] == solved, (hist["count"], solved)
crashes = counters.get("resilience.worker_crashes", 0)
print(f"SIGKILL-EXACT solved={solved:g} fallbacks={fallbacks:g} "
      f"hist={hist['count']} crashes={crashes:g}")
"""


class TestExactCountsUnderWorkerDeath:
    def test_sigkill_retry_keeps_counts_exact(self, tmp_path):
        """SIGKILL pool workers mid-run: after the retries settle,
        solved+fallback == functions and the solve-time histogram
        count equals the solved count — no loss, no double-merge."""
        script = tmp_path / "sigkill_exact.py"
        script.write_text(SIGKILL_EXACT_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), "..", "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        env.pop("REPRO_FAULTS", None)
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, timeout=240, env=env,
        )
        assert proc.returncode == 0, (
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
        assert "SIGKILL-EXACT" in proc.stdout
