"""Tests for the observability layer (repro.obs).

Covers the stats registry, phase-tracer span nesting, the
zero-cost-when-disabled contract, and the structured run report's JSON
round-trip — including an end-to-end report from a real allocation.
"""

import json

import pytest

from repro import compile_program, x86_target
from repro.core import AllocatorConfig, IPAllocator
from repro.obs import (
    NOOP_SPAN,
    CostSplit,
    FunctionRunReport,
    ModelStats,
    RunReport,
    SolverStats,
    Span,
    capture,
    constraint_class,
    counter,
    define_counter,
    define_gauge,
    disable,
    enable,
    gauge,
    render_stats,
    render_trace,
    reset_stats,
    snapshot,
    take_trace,
    trace_phase,
    variable_class,
)

SOURCE = """
int f(int a, int b) {
    int c = a + b;
    return c * a;
}
"""


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends disabled with fresh values."""
    disable()
    reset_stats()
    take_trace()
    yield
    disable()
    reset_stats()
    take_trace()


@pytest.fixture()
def fn():
    return compile_program(SOURCE).functions["f"]


class TestStatsRegistry:
    def test_counter_incr_and_snapshot(self):
        enable(trace=False)
        c = define_counter("t.hits", "test hits")
        c.incr()
        c.add(4)
        assert snapshot()["t.hits"] == 5

    def test_define_is_get_or_create(self):
        a = define_counter("t.same", "first")
        b = counter("t.same")
        assert a is b
        assert a.description == "first"

    def test_gauge_set(self):
        enable(trace=False)
        g = define_gauge("t.depth")
        g.set(7)
        g.set(3)
        assert gauge("t.depth").value == 3

    def test_reset_zeroes_all(self):
        enable(trace=False)
        counter("t.a").add(2)
        gauge("t.b").set(9)
        reset_stats()
        assert snapshot()["t.a"] == 0
        assert snapshot()["t.b"] == 0

    def test_disabled_counters_are_noops(self):
        c = define_counter("t.frozen")
        c.incr()
        c.add(100)
        define_gauge("t.frozen_gauge").set(5)
        assert snapshot()["t.frozen"] == 0
        assert snapshot()["t.frozen_gauge"] == 0

    def test_render_stats(self):
        enable(trace=False)
        counter("t.render").add(3)
        text = render_stats()
        assert "t.render" in text and "3" in text
        assert render_stats({}) == "(no stats recorded)"


class TestPhaseTracer:
    def test_disabled_returns_shared_noop(self):
        span = trace_phase("anything")
        assert span is NOOP_SPAN
        with span as s:
            s.annotate("k", 1)  # must not raise
        assert take_trace() == []

    def test_span_nesting(self):
        enable()
        with trace_phase("outer"):
            with trace_phase("inner-1"):
                pass
            with trace_phase("inner-2"):
                pass
        spans = take_trace()
        assert [s.name for s in spans] == ["outer"]
        assert [c.name for c in spans[0].children] == [
            "inner-1", "inner-2",
        ]
        assert spans[0].seconds >= sum(
            c.seconds for c in spans[0].children
        )

    def test_take_trace_drains(self):
        enable()
        with trace_phase("once"):
            pass
        assert len(take_trace()) == 1
        assert take_trace() == []

    def test_capture_isolates_and_reattaches(self):
        enable()
        with capture() as cap:
            with trace_phase("captured"):
                pass
        assert [s.name for s in cap.spans] == ["captured"]
        # Re-attached to the global trace so --trace still sees it.
        assert [s.name for s in take_trace()] == ["captured"]

    def test_capture_works_while_globally_disabled(self):
        with capture() as cap:
            with trace_phase("report-phase"):
                with trace_phase("child"):
                    pass
        assert [s.name for s in cap.spans] == ["report-phase"]
        assert [c.name for c in cap.spans[0].children] == ["child"]
        # Nothing leaks into the (disabled) global trace.
        assert take_trace() == []

    def test_annotate_and_render(self):
        enable()
        with trace_phase("p", tag="x") as span:
            span.annotate("n", 3)
        spans = take_trace()
        assert spans[0].meta == {"tag": "x", "n": 3}
        text = render_trace(spans)
        assert "p" in text and "n=3" in text

    def test_span_dict_round_trip(self):
        span = Span(name="a", seconds=0.5, meta={"k": 1})
        span.children.append(Span(name="b", seconds=0.25))
        back = Span.from_dict(span.to_dict())
        assert back.to_dict() == span.to_dict()


class TestFeatureClassification:
    def test_constraint_classes(self):
        assert constraint_class("combspec/b0.3/EAX") == \
            "combined_specifier"
        assert constraint_class("onemem/b0.3") == "memory_operand"
        assert constraint_class("cap/b0.3/AH+AX+EAX") == "overlap"
        assert constraint_class("usefrom/s/b0.3/EAX") == "encoding"
        assert constraint_class("mustdef/s/b0.3") == "core"

    def test_variable_classes(self):
        assert variable_class("copyin") == "combined_specifier"
        assert variable_class("memuse") == "memory_operand"
        assert variable_class("usefrom") == "encoding"
        assert variable_class("coalesce") == "predefined_memory"
        assert variable_class("occupy") == "core"

    def test_model_stats_breakdown_sums(self, fn):
        allocator = IPAllocator(x86_target())
        _, model, table, _ = allocator.build_model(fn)
        stats = ModelStats.from_model(model, table)
        assert stats.n_variables == model.n_vars
        assert stats.n_constraints == model.n_constraints
        assert sum(stats.constraints_by_class.values()) == \
            model.n_constraints
        # Every kind-classified variable is free, so the breakdown can
        # never exceed the free-variable count.
        assert sum(stats.variables_by_class.values()) <= model.n_vars


class TestRunReport:
    def test_json_round_trip_synthetic(self):
        report = RunReport(
            target="x86", backend="branch-bound", command="alloc",
            functions=[FunctionRunReport(
                function="f",
                benchmark="compress",
                status="optimal",
                n_instructions=12,
                model=ModelStats(
                    n_variables=10, n_constraints=20,
                    variables_by_class={"core": 10},
                    constraints_by_class={"core": 18, "overlap": 2},
                ),
                solver=SolverStats(
                    backend="branch-bound", status="optimal",
                    solve_seconds=0.5, nodes=7, lp_relaxations=7,
                    incumbents=[(0.1, 99.0), (0.3, 42.0)],
                    objective=42.0,
                ),
                cost=CostSplit(
                    total=42.0, cycle_term=30.0, size_term=12.0,
                ),
                phases=[Span(name="solve", seconds=0.5)],
                counters={"solver.bb.nodes": 7},
            )],
            counters={"ip.functions": 1},
        )
        back = RunReport.from_json(report.to_json())
        assert back.to_dict() == report.to_dict()
        # And it is really JSON all the way down.
        json.loads(report.to_json())

    def test_end_to_end_report(self, fn):
        config = AllocatorConfig(
            backend="branch-bound", collect_report=True
        )
        alloc = IPAllocator(x86_target(), config).allocate(fn)
        assert alloc.status == "optimal"
        report = alloc.report
        assert report is not None
        assert report.function == "f"
        assert report.model.n_constraints > 0
        assert report.solver.backend == "branch-bound"
        assert report.solver.nodes >= 1
        assert report.solver.lp_relaxations >= 1
        assert report.solver.incumbents  # at least the final optimum
        # §4: the term split reconstructs the solved objective.
        split = report.cost
        total = (
            split.cycle_term + split.size_term + split.data_term
            + split.constant
        )
        assert total == pytest.approx(alloc.objective)
        # Per-phase timings cover the pipeline.
        seconds = report.phase_seconds
        for phase in ("ip-allocate", "analysis", "solve", "rewrite"):
            assert phase in seconds
        back = RunReport.from_json(
            RunReport(functions=[report]).to_json()
        )
        assert back.functions[0].model.n_constraints == \
            report.model.n_constraints

    def test_trace_id_stamped_and_round_tripped(self, fn):
        """A caller identity in the config flows into the function
        report and survives the JSON round trip (the allocation
        service and --report-json rely on this for attribution)."""
        config = AllocatorConfig(
            collect_report=True, trace_id="req-000001-abc"
        )
        alloc = IPAllocator(x86_target(), config).allocate(fn)
        assert alloc.report.trace_id == "req-000001-abc"
        report = RunReport(
            trace_id="req-000001-abc", functions=[alloc.report]
        )
        back = RunReport.from_json(report.to_json())
        assert back.trace_id == "req-000001-abc"
        assert back.functions[0].trace_id == "req-000001-abc"
        # Anonymous runs stay anonymous.
        anon = IPAllocator(
            x86_target(), AllocatorConfig(collect_report=True)
        ).allocate(fn)
        assert anon.report.trace_id == ""

    def test_disabled_mode_still_reports_solver_stats(self, fn):
        """collect_report works without enable(): solver stats and the
        cost split come from the result, not the global registry."""
        config = AllocatorConfig(collect_report=True)
        alloc = IPAllocator(x86_target(), config).allocate(fn)
        assert alloc.report.solver.solve_seconds > 0
        assert alloc.report.counters == {}  # registry was off

    def test_totals_aggregation(self):
        report = RunReport(functions=[
            FunctionRunReport(
                function=f"f{i}",
                model=ModelStats(n_variables=5, n_constraints=9),
                solver=SolverStats(nodes=2, lp_relaxations=3),
            )
            for i in range(3)
        ])
        totals = report.totals()
        assert totals["functions"] == 3
        assert totals["n_variables"] == 15
        assert totals["n_constraints"] == 27
        assert totals["nodes"] == 6
        assert totals["lp_relaxations"] == 9
