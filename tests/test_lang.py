"""Tests for the mini-C frontend (lexer, parser, codegen semantics)."""

import pytest

from repro.ir import I8, I16, I32, verify_function
from repro.lang import (
    CodeGenError,
    SyntaxErrorMC,
    compile_program,
    parse_program,
    tokenize,
)
from repro.sim import Interpreter


def run(src, entry="main", args=()):
    module = compile_program(src)
    for fn in module:
        verify_function(fn)
    return Interpreter(module).run(entry, list(args)).return_value


class TestLexer:
    def test_tokens(self):
        toks = tokenize("int x = 42; // comment\nx <<= 2;")
        kinds = [(t.kind, t.text) for t in toks]
        assert ("kw", "int") in kinds
        assert ("num", "42") in kinds
        assert ("op", "<<=") in kinds
        assert kinds[-1] == ("eof", "")

    def test_comments_stripped(self):
        toks = tokenize("/* multi\nline */ int x;")
        assert toks[0].text == "int"

    def test_line_numbers(self):
        toks = tokenize("int\nx\n=\n1;")
        assert toks[1].line == 2


class TestParser:
    def test_program_shape(self):
        p = parse_program("int g; int f(int a) { return a; }")
        assert [g.name for g in p.globals] == ["g"]
        assert [f.name for f in p.functions] == ["f"]

    def test_precedence(self):
        assert run("int main(int n) { return 2 + 3 * 4; }", args=[0]) == 14
        assert run("int main(int n) { return (2 + 3) * 4; }", args=[0]) == 20
        assert run("int main(int n) { return 1 << 2 + 1; }", args=[0]) == 8

    def test_errors(self):
        with pytest.raises(SyntaxErrorMC):
            parse_program("int f( { }")
        with pytest.raises(SyntaxErrorMC):
            parse_program("float f() { }")


class TestSemantics:
    def test_arithmetic_and_logic(self):
        src = """
        int main(int n) {
            int a = n * 3 - 1;
            int b = a % 7;
            int c = a / 7;
            return (a << 1) + (b ^ c) + (a & 15) + (a | 1);
        }
        """
        n = 13
        a = n * 3 - 1
        expected = (a << 1) + ((a % 7) ^ (a // 7)) + (a & 15) + (a | 1)
        assert run(src, args=[n]) == expected

    def test_truncating_division(self):
        assert run("int main(int n) { return (0 - 7) / 2; }", args=[0]) == -3
        assert run("int main(int n) { return (0 - 7) % 2; }", args=[0]) == -1

    def test_comparisons_as_values(self):
        assert run("int main(int n) { return (n > 2) + (n == 3); }",
                   args=[3]) == 2

    def test_short_circuit(self):
        # Division by zero on the right must not execute.
        src = """
        int main(int n) {
            if (n == 0 || 10 / n > 100) { return 1; }
            return 0;
        }
        """
        assert run(src, args=[0]) == 1
        assert run(src, args=[5]) == 0

    def test_while_and_for(self):
        src = """
        int main(int n) {
            int s = 0;
            for (int i = 1; i <= n; i += 1) { s += i; }
            int t = 0;
            int j = n;
            while (j > 0) { t += j; j -= 1; }
            return s * 1000 + t;
        }
        """
        assert run(src, args=[10]) == 55 * 1000 + 55

    def test_do_while(self):
        src = """
        int main(int n) {
            int c = 0;
            do { c += 1; n -= 1; } while (n > 0);
            return c;
        }
        """
        assert run(src, args=[3]) == 3
        assert run(src, args=[0]) == 1  # body runs at least once

    def test_break_continue(self):
        src = """
        int main(int n) {
            int s = 0;
            for (int i = 0; i < 100; i += 1) {
                if (i == n) { break; }
                if ((i & 1) == 1) { continue; }
                s += i;
            }
            return s;
        }
        """
        assert run(src, args=[7]) == 0 + 2 + 4 + 6

    def test_narrow_types_wrap(self):
        src = """
        int main(int n) {
            char c = 127;
            c += 1;
            short s = 32767;
            s += 1;
            return (c == 0 - 128) + ((s == 0 - 32768) << 1);
        }
        """
        assert run(src, args=[0]) == 3

    def test_char_comparisons(self):
        src = """
        int main(int n) {
            char c = (char)n;
            if (c >= 48 && c <= 57) { return c - 48; }
            return 0 - 1;
        }
        """
        assert run(src, args=[53]) == 5
        assert run(src, args=[200]) == -1  # wraps to negative

    def test_arrays_and_globals(self):
        src = """
        int table[8];
        int fill(void) {
            for (int i = 0; i < 8; i += 1) { table[i] = i * i; }
            return 0;
        }
        int main(int n) {
            fill();
            return table[n] + table[7];
        }
        """
        assert run(src, args=[3]) == 9 + 49

    def test_local_arrays_are_per_activation(self):
        src = """
        int rec(int depth) {
            int buf[4];
            buf[0] = depth;
            if (depth > 0) { rec(depth - 1); }
            return buf[0];
        }
        int main(int n) { return rec(n); }
        """
        assert run(src, args=[5]) == 5

    def test_scoping_and_shadowing(self):
        src = """
        int main(int n) {
            int x = 1;
            { int x = 2; n += x; }
            { int x = 3; n += x; }
            return n + x;
        }
        """
        assert run(src, args=[0]) == 6

    def test_unreachable_code_after_return(self):
        src = """
        int main(int n) {
            return 1;
            n += 5;
            return n;
        }
        """
        assert run(src, args=[0]) == 1

    def test_missing_return_yields_zero(self):
        src = "int main(int n) { n += 1; }"
        assert run(src, args=[5]) == 0

    def test_void_function(self):
        src = """
        int g;
        void set(int v) { g = v; }
        int main(int n) { set(n * 2); return g; }
        """
        assert run(src, args=[21]) == 42

    def test_casts(self):
        src = """
        int main(int n) {
            int big = 300;
            char c = (char)big;
            return (int)c;
        }
        """
        assert run(src, args=[0]) == 300 - 256

    def test_errors(self):
        with pytest.raises(CodeGenError):
            compile_program("int main(int n) { return zzz; }")
        with pytest.raises(CodeGenError):
            compile_program("int main(int n) { return f(1); }")
        with pytest.raises(CodeGenError):
            compile_program("int a[4]; int main(int n) { return a; }")
        with pytest.raises(CodeGenError):
            compile_program(
                "int main(int n) { int x = 1; int x = 2; return x; }"
            )
