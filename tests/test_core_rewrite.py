"""Tests of the ORA rewrite module's output structure."""

import pytest

from repro.core import AllocatorConfig, IPAllocator
from repro.ir import (
    Cond,
    I32,
    IRBuilder,
    Module,
    Opcode,
    SlotKind,
    verify_function,
)
from repro.sim import AllocatedFunction, Interpreter


def allocate(fn, x86, **cfg):
    alloc = IPAllocator(x86, AllocatorConfig(**cfg)).allocate(fn)
    assert alloc.succeeded
    return alloc


class TestRewriteStructure:
    def test_rewritten_ir_verifies(self, x86, loop_sum_module):
        for fn in loop_sum_module:
            alloc = allocate(fn, x86)
            verify_function(alloc.function)

    def test_vreg_naming_scheme(self, x86, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        alloc = allocate(fn, x86)
        for name, reg in alloc.assignment.items():
            if "@" in name:
                base, reg_name = name.rsplit("@", 1)
                assert reg_name == reg.name

    def test_assignment_covers_exactly_used_vregs(self, x86,
                                                  loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        alloc = allocate(fn, x86)
        used = {v.name for v in alloc.function.vregs()}
        assert set(alloc.assignment) == used

    def test_spill_slots_added_to_function(self, x86):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        vals = [b.add(n, b.imm(k), hint=f"v{k}") for k in range(9)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        r = b.call("g", [acc])
        total = r
        for v in vals:
            total = b.add(total, v)
        b.ret(total)
        fn = b.done()
        alloc = allocate(fn, x86, validate=False)
        spill_slots = [
            s for s in alloc.function.slots.values()
            if s.kind.value == "spill"
        ]
        assert alloc.stats.stores > 0
        assert spill_slots, "spilling must create slots"

    def test_coalesced_param_reuses_param_slot(self, x86):
        # §5.5: spill traffic of a coalesced register targets the
        # original parameter slot, not a fresh spill slot.
        b = IRBuilder("f")
        pa = b.slot("a", kind=SlotKind.PARAM)
        b.block("entry")
        a = b.load(pa)
        b.cjump(Cond.GT, a, b.imm(0), "x", "y")
        b.block("x")
        b.ret(b.imm(1))
        b.block("y")
        b.ret(a)
        fn = b.done()
        alloc = allocate(fn, x86)
        if alloc.stats.loads_deleted:
            reads = [
                i for _, _, i in alloc.function.instructions()
                if i.opcode is Opcode.LOAD and i.addr.slot is not None
                and i.addr.slot.name == "a"
            ]
            memuses = [
                s for _, _, i in alloc.function.instructions()
                for s in i.srcs
                if hasattr(s, "slot") and s.slot is not None
                and s.slot.name == "a"
            ]
            assert reads or memuses

    def test_inserted_code_is_tagged(self, x86):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        vals = [b.add(n, b.imm(k), hint=f"v{k}") for k in range(9)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        for v in vals:
            acc = b.add(acc, v)
        b.ret(acc)
        fn = b.done()
        alloc = allocate(fn, x86)
        tags = {
            i.origin for _, _, i in alloc.function.instructions()
            if i.origin
        }
        assert tags <= {"spill-load", "spill-store", "remat", "copy"}
        if alloc.stats.loads:
            assert "spill-load" in tags

    def test_idempotent_inputs(self, x86, loop_sum_module):
        # Allocating the same function twice must not mutate the input.
        fn = loop_sum_module.functions["sum"]
        from repro.ir import format_function

        before = format_function(fn)
        allocate(fn, x86)
        assert format_function(fn) == before
        allocate(fn, x86)
        assert format_function(fn) == before


class TestMixedModeExecution:
    def test_partially_allocated_module(self, x86, loop_sum_module):
        # Allocate only 'sum'; 'double' runs symbolically.
        fn = loop_sum_module.functions["sum"]
        alloc = allocate(fn, x86)
        ref = Interpreter(loop_sum_module).run("sum", [6]).return_value
        got = Interpreter(
            loop_sum_module, target=x86,
            allocations={"sum": AllocatedFunction(
                alloc.function, alloc.assignment
            )},
        ).run("sum", [6]).return_value
        assert got == ref
