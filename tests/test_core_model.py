"""Structural tests of the IP model the analysis module builds."""

import pytest

from repro.core import (
    ActionKind,
    AllocatorConfig,
    CostModel,
    IPAllocator,
    find_predefined_candidates,
)
from repro.analysis import static_frequencies
from repro.ir import (
    Cond,
    I32,
    IRBuilder,
    Module,
    Opcode,
    SlotKind,
)
from repro.solver import solve
from repro.target import risc_target, x86_target


def build(fn, target, config=None):
    return IPAllocator(target, config or AllocatorConfig()).build_model(fn)


def records_of(table, kind):
    return [r for r in table.records if r.kind is kind]


class TestModelStructure:
    def test_def_vars_per_admissible_register(self, x86):
        b = IRBuilder("f")
        b.block("entry")
        x = b.li(1)
        b.ret(x)
        fn = b.done()
        _, model, table, _ = build(fn, x86)
        defs = records_of(table, ActionKind.DEF)
        li_defs = [r for r in defs if r.vreg == "c"]
        assert len(li_defs) == 6  # one per allocatable 32-bit register

    def test_call_dst_restricted_to_eax(self, x86):
        b = IRBuilder("f")
        b.block("entry")
        r = b.call("g", [])
        b.ret(r)
        fn = b.done()
        _, model, table, _ = build(fn, x86)
        defs = [r_ for r_ in records_of(table, ActionKind.DEF)
                if r_.vreg == "ret"]
        assert [d.reg for d in defs] == ["EAX"]

    def test_copyin_only_where_allowed(self, x86):
        # COPY is not two-address: its source gets no copyin vars.
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        x = b.vreg("x")
        b.copy_into(x, n)
        b.ret(b.add(x, n))
        fn = b.done()
        _, model, table, _ = build(fn, x86)
        copyins = records_of(table, ActionKind.COPYIN)
        # copyin exists at the ADD (two-address) but not at the COPY.
        assert copyins
        add_site = {(r.block, r.index) for r in copyins}
        copy_idx = next(
            i for _, i, ins in fn.instructions()
            if ins.opcode is Opcode.COPY
        )
        assert ("entry", copy_idx) not in add_site

    def test_remat_vars_only_for_constants(self, x86):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)  # not rematerialisable
        c = b.li(7, hint="c")  # rematerialisable
        b.ret(b.add(b.add(n, c), n))
        fn = b.done()
        _, model, table, _ = build(fn, x86)
        remat_regs = {r.vreg for r in records_of(table, ActionKind.REMAT)}
        assert "c" in remat_regs
        assert "t" not in remat_regs  # the load result

    def test_memuse_only_with_mem_operand_rules(self, x86):
        b = IRBuilder("f")
        pa = b.slot("a", kind=SlotKind.PARAM)
        b.block("entry")
        a = b.load(pa)
        b.ret(b.add(a, b.imm(1)))
        fn = b.done()
        cfg = AllocatorConfig(enable_memory_operands=False)
        _, model, table, _ = build(fn, x86, cfg)
        assert not records_of(table, ActionKind.MEMUSE)
        assert not records_of(table, ActionKind.CMEMUD)

    def test_x86_vs_risc_constraint_counts(self, x86, risc,
                                           loop_sum_module):
        # §6: the x86 model is substantially smaller than the RISC-24
        # model because there are fewer registers.
        fn = loop_sum_module.functions["sum"]
        _, model_x86, _, _ = build(fn, x86)
        _, model_risc, _, _ = build(fn, risc)
        assert model_risc.n_constraints > 2 * model_x86.n_constraints
        assert model_risc.n_vars > 2 * model_x86.n_vars

    def test_infeasibility_never_silent(self, x86, loop_sum_module):
        # The model for a normal function must be feasible.
        fn = loop_sum_module.functions["sum"]
        _, model, _, _ = build(fn, x86)
        res = solve(model, "scipy", time_limit=60)
        assert res.status.has_solution


class TestPredefinedCandidates:
    def test_param_candidate(self):
        b = IRBuilder("f")
        pa = b.slot("a", kind=SlotKind.PARAM)
        b.block("entry")
        a = b.load(pa)
        b.ret(a)
        cands = find_predefined_candidates(b.done())
        assert set(cands) == {"t"}
        assert cands["t"].slot_name == "a"

    def test_stored_slot_rejected(self):
        b = IRBuilder("f")
        pa = b.slot("a", kind=SlotKind.PARAM)
        b.block("entry")
        a = b.load(pa)
        b.store(pa, b.imm(1))
        b.ret(a)
        assert not find_predefined_candidates(b.done())

    def test_multiply_defined_rejected(self):
        b = IRBuilder("f")
        pa = b.slot("a", kind=SlotKind.PARAM)
        b.block("entry")
        a = b.load(pa)
        b.load_into(a, pa)  # second definition
        b.ret(a)
        assert not find_predefined_candidates(b.done())

    def test_global_with_calls_rejected(self):
        from repro.ir import MemorySlot

        b = IRBuilder("f")
        g = b.function.add_slot(
            MemorySlot("g", I32, SlotKind.GLOBAL)
        )
        b.block("entry")
        v = b.load(g)
        b.call("other", [])
        b.ret(v)
        assert not find_predefined_candidates(b.done())

    def test_indexed_load_rejected(self):
        from repro.ir import Address

        b = IRBuilder("f")
        arr = b.slot("arr", I32, SlotKind.ARRAY, count=4)
        pi = b.slot("i", kind=SlotKind.PARAM)
        b.block("entry")
        i = b.load(pi)
        v = b.load(Address(slot=arr, index=i, scale=4), I32)
        b.ret(v)
        cands = find_predefined_candidates(b.done())
        assert "t.1" not in cands  # the indexed load's target


class TestCostModel:
    def test_eq1_composition(self, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        freq = static_frequencies(fn)
        config = AllocatorConfig(
            code_size_weight=1000.0, data_size_weight=0.0
        )
        cm = CostModel(freq=freq, config=config)
        # Table 1 load: 1 cycle + 3 bytes.
        assert cm.load("entry", 4) == pytest.approx(1 * 1 + 1000 * 3)
        assert cm.load("body", 4) == pytest.approx(10 * 1 + 1000 * 3)
        assert cm.copy("entry", ) == pytest.approx(1 + 2000)

    def test_pure_size_optimisation(self, loop_sum_module):
        # §4: with A ignored and C=0 the model optimises size only.
        fn = loop_sum_module.functions["sum"]
        freq = static_frequencies(fn)
        config = AllocatorConfig(code_size_weight=1.0)
        cm = CostModel(freq=freq, config=config)
        assert cm.store("body", 4) == pytest.approx(10 + 3)

    def test_data_size_weight(self, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        freq = static_frequencies(fn)
        config = AllocatorConfig(
            code_size_weight=0.0, data_size_weight=2.0
        )
        cm = CostModel(freq=freq, config=config)
        assert cm.load("entry", 4) == pytest.approx(1 + 2 * 4)
        assert cm.memory_use("entry", 2) == pytest.approx(1 + 2 * 2)

    def test_profile_scaling(self, loop_sum_module):
        from repro.analysis import profiled_frequencies
        from repro.sim import Interpreter

        run = Interpreter(loop_sum_module).run("sum", [9])
        fn = loop_sum_module.functions["sum"]
        freq = profiled_frequencies(fn, run.blocks_of("sum"))
        config = AllocatorConfig(profile_scale=1000.0,
                                 code_size_weight=0.0)
        cm = CostModel(freq=freq, config=config)
        assert cm.remat("body") == pytest.approx(10 * 1000.0)
