"""Tests for the benchmark harness: workloads, suite, metrics, tables,
figures.  Uses a two-benchmark subset so the whole file stays fast."""

import pytest

from repro.bench import (
    ALL_BENCHMARKS,
    aggregate,
    fig9_series,
    fig10_series,
    load_all,
    load_benchmark,
    render_figure,
    render_table1,
    render_table2,
    render_table3,
    run_benchmark,
    run_suite,
    spill_overhead,
    table1_rows,
    table2_rows,
    table3,
)
from repro.bench.suite import SuiteResult
from repro.core import AllocatorConfig
from repro.ir import verify_function
from repro.sim import Interpreter
from repro.target import x86_target


@pytest.fixture(scope="module")
def small_suite():
    target = x86_target()
    config = AllocatorConfig(time_limit=60.0)
    benchmarks = [load_benchmark("compress"), load_benchmark("cc1")]
    return run_suite(target, config, benchmarks)


class TestWorkloads:
    def test_six_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 6
        assert {b.name for b in ALL_BENCHMARKS} == {
            "compress", "eqntott", "xlisp", "sc", "espresso", "cc1",
        }

    @pytest.mark.parametrize("name", [b.name for b in ALL_BENCHMARKS])
    def test_compiles_verifies_runs(self, name):
        bench, module = load_benchmark(name)
        for fn in module:
            verify_function(fn)
        run = Interpreter(module).run(bench.entry, list(bench.args))
        assert run.return_value is not None
        assert run.steps > 100  # non-trivial dynamic behaviour

    def test_deterministic(self):
        bench, module = load_benchmark("eqntott")
        a = Interpreter(module).run(bench.entry, list(bench.args))
        b = Interpreter(module).run(bench.entry, list(bench.args))
        assert a.return_value == b.return_value
        assert a.cycles == b.cycles

    def test_scales_with_input(self):
        bench, module = load_benchmark("compress")
        small = Interpreter(module).run(bench.entry, [16])
        large = Interpreter(module).run(bench.entry, [48])
        assert large.steps > small.steps


class TestSuite:
    def test_outputs_match(self, small_suite):
        for result in small_suite.results:
            result.check_outputs()  # raises on mismatch

    def test_reports_complete(self, small_suite):
        for result in small_suite.results:
            assert len(result.functions) == len(
                result.ip_allocations
            ) or len(result.functions) >= len(result.ip_allocations)
            for report in result.functions:
                assert report.n_instructions > 0
                if report.solved:
                    assert report.n_constraints > 0

    def test_all_solved_within_limit(self, small_suite):
        for report in small_suite.function_reports:
            assert report.solved, report.function
            assert report.solve_seconds < 60.0


class TestTables:
    def test_table1_is_paper_table1(self):
        rows = dict(
            (name, (cyc, size)) for name, cyc, size in table1_rows()
        )
        assert rows == {
            "load": (1, 3),
            "store": (1, 3),
            "rematerialization": (1, 3),
            "copy": (1, 2),
        }
        text = render_table1()
        assert "Table 1" in text and "rematerialization" in text

    def test_table2_row_arithmetic(self, small_suite):
        rows = table2_rows(small_suite)
        total = rows[-1]
        assert total.benchmark == "Total"
        assert total.total == sum(r.total for r in rows[:-1])
        assert total.solved <= total.attempted <= total.total
        assert "98.1%" in render_table2(small_suite, 60.0)

    def test_table3_totals(self, small_suite):
        data = table3(small_suite)
        total = data.total_row
        assert total.ip == pytest.approx(sum(r.ip for r in data.rows))
        assert total.gc == pytest.approx(sum(r.gc for r in data.rows))
        text = render_table3(small_suite)
        assert "Spill Load" in text and "Copy" in text

    def test_ip_beats_baseline_on_cycles(self, small_suite):
        data = table3(small_suite)
        # The paper's headline direction: IP allocation overhead below
        # the graph-coloring allocator's.
        assert data.ip_cycles < data.gc_cycles


class TestMetrics:
    def test_overhead_is_zero_against_self(self, small_suite):
        ref = small_suite.results[0].reference
        data = spill_overhead(ref, ref, ref)
        assert all(r.ip == 0 and r.gc == 0 for r in data.rows)
        assert data.overhead_reduction == 0.0

    def test_aggregate_sums(self, small_suite):
        parts = [
            spill_overhead(r.reference, r.ip_run, r.gc_run)
            for r in small_suite.results
        ]
        agg = aggregate(parts)
        assert agg.ip_cycles == pytest.approx(
            sum(p.ip_cycles for p in parts)
        )
        with pytest.raises(ValueError):
            aggregate([])


class TestFigures:
    def test_fig9_positive_exponent(self, small_suite):
        series = fig9_series(small_suite.function_reports)
        fit = series.fit()
        assert fit.n_points == len(small_suite.function_reports)
        # Constraint growth: at least linear, below quadratic.
        assert 0.8 < fit.exponent < 2.0
        assert fit.predict(10.0) > 0

    def test_fig10_series_only_optimal(self, small_suite):
        series = fig10_series(small_suite.function_reports)
        assert len(series.xs) <= len(small_suite.function_reports)
        assert all(y > 0 for y in series.ys)

    def test_render(self, small_suite):
        text = render_figure(
            fig9_series(small_suite.function_reports),
            "Figure 9", "paper: slightly superlinear",
        )
        assert "Figure 9" in text and "x^" in text

    def test_fit_requires_points(self):
        from repro.bench import FigureSeries

        with pytest.raises(ValueError):
            FigureSeries(xs=[1.0], ys=[1.0], x_label="x",
                         y_label="y").fit()
