"""Tests for the shared operand-position helper (analysis/rewrite
agreement layer)."""

from repro.core import AllocatorConfig, operand_positions, allowed_registers
from repro.core.operands import cmemud_position
from repro.ir import (
    Address,
    I8,
    I32,
    Immediate,
    Instr,
    MemorySlot,
    Opcode,
    SlotKind,
    VirtualRegister,
)
from repro.target import x86_target

TARGET = x86_target()
CONFIG = AllocatorConfig()


def v(name, type_=I32):
    return VirtualRegister(name, type_)


class TestPositions:
    def test_alu_positions(self):
        instr = Instr(Opcode.ADD, dst=v("d"), srcs=(v("a"), v("b")))
        pos = operand_positions(instr, TARGET, CONFIG)
        assert [p.key for p in pos] == ["s0", "s1"]
        assert all(p.mem_ok for p in pos)  # commutative: both may be mem

    def test_sub_tied_position_not_mem(self):
        instr = Instr(Opcode.SUB, dst=v("d"), srcs=(v("a"), v("b")))
        pos = {p.key: p for p in operand_positions(instr, TARGET, CONFIG)}
        assert not pos["s0"].mem_ok  # forced tie cannot be memory
        assert pos["s1"].mem_ok

    def test_single_vreg_commutative_tie_blocks_mem(self):
        instr = Instr(Opcode.ADD, dst=v("d"),
                      srcs=(v("a"), Immediate(1, I32)))
        pos = {p.key: p for p in operand_positions(instr, TARGET, CONFIG)}
        assert not pos["s0"].mem_ok  # only tie candidate

    def test_address_positions(self):
        slot = MemorySlot("arr", I32, SlotKind.ARRAY, count=4)
        addr = Address(slot=slot, base=v("b"), index=v("i"), scale=4)
        instr = Instr(Opcode.LOAD, dst=v("d"), addr=addr)
        pos = {p.key: p for p in operand_positions(instr, TARGET, CONFIG)}
        assert pos["a0b"].role == "base"
        assert pos["a0i"].role == "index"
        assert not pos["a0b"].mem_ok

    def test_pos_ids_stable(self):
        slot = MemorySlot("arr", I32, SlotKind.ARRAY, count=4)
        addr = Address(slot=slot, base=v("b"))
        instr = Instr(Opcode.STORE, srcs=(v("x"),), addr=addr)
        pos = {p.key: p for p in operand_positions(instr, TARGET, CONFIG)}
        assert pos["s0"].pos_id == 0
        assert pos["a0b"].pos_id == 100

    def test_mem_disabled_by_config(self):
        cfg = AllocatorConfig(enable_memory_operands=False)
        instr = Instr(Opcode.ADD, dst=v("d"), srcs=(v("a"), v("b")))
        assert not any(
            p.mem_ok for p in operand_positions(instr, TARGET, cfg)
        )


class TestAllowedRegisters:
    def test_exact_family_binding(self):
        instr = Instr(Opcode.SHL, dst=v("d"), srcs=(v("a"), v("c")))
        pos = {p.key: p for p in operand_positions(instr, TARGET, CONFIG)}
        adm = TARGET.admissible(v("c"))
        allowed = allowed_registers(pos["s1"], adm, TARGET)
        assert [r.name for r in allowed] == ["ECX"]

    def test_exclusions(self):
        instr = Instr(Opcode.DIV, dst=v("q"), srcs=(v("a"), v("b")))
        pos = {p.key: p for p in operand_positions(instr, TARGET, CONFIG)}
        allowed = allowed_registers(
            pos["s1"], TARGET.admissible(v("b")), TARGET
        )
        families = {r.family for r in allowed}
        assert "A" not in families and "D" not in families

    def test_width_8_family_binding(self):
        instr = Instr(Opcode.SHL, dst=v("d", I8), srcs=(v("a", I8),
                                                        v("c", I8)))
        pos = {p.key: p for p in operand_positions(instr, TARGET, CONFIG)}
        allowed = allowed_registers(
            pos["s1"], TARGET.admissible(v("c", I8)), TARGET
        )
        assert [r.name for r in allowed] == ["CL"]  # not CH


class TestCmemud:
    def test_same_vreg_required(self):
        rules = TARGET.constraints(
            Instr(Opcode.ADD, dst=v("a"), srcs=(v("a"), v("b")))
        )
        instr = Instr(Opcode.ADD, dst=v("a"), srcs=(v("a"), v("b")))
        assert cmemud_position(instr, rules, CONFIG) == "s0"

    def test_commutative_second_position(self):
        instr = Instr(Opcode.ADD, dst=v("a"), srcs=(v("b"), v("a")))
        rules = TARGET.constraints(instr)
        assert cmemud_position(instr, rules, CONFIG) == "s1"

    def test_different_vregs_no_rmw(self):
        instr = Instr(Opcode.ADD, dst=v("d"), srcs=(v("a"), v("b")))
        rules = TARGET.constraints(instr)
        assert cmemud_position(instr, rules, CONFIG) is None

    def test_sub_reversed_no_rmw(self):
        # a = b - a: the tied candidate is s0 = b != dst.
        instr = Instr(Opcode.SUB, dst=v("a"), srcs=(v("b"), v("a")))
        rules = TARGET.constraints(instr)
        assert cmemud_position(instr, rules, CONFIG) is None

    def test_disabled_by_config(self):
        cfg = AllocatorConfig(enable_memory_operands=False)
        instr = Instr(Opcode.ADD, dst=v("a"), srcs=(v("a"), v("b")))
        rules = TARGET.constraints(instr)
        assert cmemud_position(instr, rules, cfg) is None
