"""Tests for the 0-1 IP model layer and all solver backends.

The property test cross-checks the HiGHS backend and the from-scratch
branch-and-bound against exhaustive enumeration on random small models.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import (
    InfeasibleModel,
    IPModel,
    Sense,
    SolveStatus,
    solve,
    solve_brute_force,
    solve_with_branch_bound,
    solve_with_scipy,
)


def knapsack_model():
    """max value s.t. weight <= 5  (min negated value)."""
    m = IPModel("knap")
    items = [(3, 4), (2, 3), (4, 5), (1, 1)]  # (weight, value)
    xs = [m.add_var(f"x{i}", -v) for i, (w, v) in enumerate(items)]
    m.add_constraint(
        [(w, x) for (w, _v), x in zip(items, xs)], Sense.LE, 5, "cap"
    )
    return m, xs


class TestModel:
    def test_counts(self):
        m, xs = knapsack_model()
        assert m.n_vars == 4
        assert m.n_constraints == 1

    def test_fixing_moves_cost_to_constant(self):
        m = IPModel()
        x = m.add_var("x", 7.0)
        m.fix(x, 1)
        assert m.objective_constant == 7.0
        assert m.n_vars == 0

    def test_fixing_folds_into_constraints(self):
        m = IPModel()
        x = m.add_var("x")
        y = m.add_var("y")
        m.fix(x, 1)
        con = m.add_constraint([(1, x), (1, y)], Sense.LE, 1, "c")
        assert con is not None
        assert [(c, v.name) for c, v in con.terms] == [(1, "y")]
        assert con.rhs == 0

    def test_vacuous_constraint_dropped(self):
        m = IPModel()
        x = m.add_var("x")
        m.fix(x, 0)
        assert m.add_constraint([(1, x)], Sense.LE, 1) is None

    def test_contradictory_fixing_raises(self):
        m = IPModel()
        x = m.add_var("x")
        m.fix(x, 1)
        with pytest.raises(InfeasibleModel):
            m.add_constraint([(1, x)], Sense.LE, 0, "bad")

    def test_check_and_evaluate(self):
        m, xs = knapsack_model()
        values = {x.index: 0 for x in xs}
        values[xs[1].index] = 1
        assert m.check(values)
        assert m.evaluate(values) == -3
        values[xs[0].index] = 1
        values[xs[2].index] = 1
        assert not m.check(values)  # weight 9 > 5

    def test_fix_after_constraining_raises(self):
        # Regression: fixing a variable that already appears in a
        # constraint used to silently leave the stale coefficient in
        # place, corrupting the constraint.
        m = IPModel()
        x = m.add_var("x")
        y = m.add_var("y")
        con = m.add_constraint([(1, x), (1, y)], Sense.LE, 1, "c")
        with pytest.raises(ValueError, match="already appears"):
            m.fix(x, 1)
        # the constraint is untouched by the failed fix
        assert [(c, v.name) for c, v in con.terms] == \
            [(1, "x"), (1, "y")]
        assert con.rhs == 1

    def test_refix_same_value_allowed_after_constraining(self):
        # Re-fixing to the already-fixed value is a no-op, not an
        # ordering violation.
        m = IPModel()
        x = m.add_var("x")
        y = m.add_var("y")
        m.fix(x, 1)
        m.add_constraint([(1, x), (1, y)], Sense.LE, 1, "c")
        m.fix(x, 1)
        with pytest.raises(InfeasibleModel):
            m.fix(x, 0)

    def test_evaluate_and_check_tolerate_omitted_fixed_indices(self):
        # Regression: assignments covering only the free variables
        # used to raise KeyError on models with build-time fixings.
        m = IPModel()
        x = m.add_var("x", 3.0)
        y = m.add_var("y", 5.0)
        m.fix(x, 1)
        m.add_constraint([(1, x), (1, y)], Sense.LE, 1, "c")
        free_only = {y.index: 0}
        assert m.check(free_only)
        # an omitted fixed index behaves exactly like supplying the
        # fixed value explicitly
        full = {x.index: 1, y.index: 0}
        assert m.evaluate(free_only) == m.evaluate(full)
        assert m.check(free_only) == m.check(full)
        assert not m.check({y.index: 1})

    def test_evaluate_missing_free_variable_still_raises(self):
        m = IPModel()
        m.add_var("x", 1.0)
        with pytest.raises(KeyError):
            m.evaluate({})


class TestBackends:
    @pytest.mark.parametrize("backend", ["scipy", "branch-bound"])
    def test_knapsack_optimal(self, backend):
        m, xs = knapsack_model()
        res = solve(m, backend)
        assert res.status is SolveStatus.OPTIMAL
        # Best packing: items (3,4) and (2,3) -> weight 5, value 7.
        assert res.objective == -7
        brute = solve_brute_force(m)
        assert res.objective == pytest.approx(brute.objective)

    def test_infeasible(self):
        m = IPModel()
        x = m.add_var("x")
        m.add_constraint([(1, x)], Sense.GE, 2, "impossible")
        for backend in ("scipy", "branch-bound"):
            assert solve(m, backend).status is SolveStatus.INFEASIBLE

    def test_equality_constraints(self):
        m = IPModel()
        xs = [m.add_var(f"x{i}", float(i)) for i in range(4)]
        m.add_constraint([(1, x) for x in xs], Sense.EQ, 2, "pick2")
        for backend in ("scipy", "branch-bound"):
            res = solve(m, backend)
            assert res.status is SolveStatus.OPTIMAL
            assert res.objective == 1.0  # x0 + x1
            assert sum(res.values[x.index] for x in xs) == 2

    def test_empty_model(self):
        m = IPModel()
        for backend in ("scipy", "branch-bound"):
            res = solve(m, backend)
            assert res.status is SolveStatus.OPTIMAL
            assert res.objective == 0.0

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            solve(IPModel(), "cplex")

    def test_branch_bound_node_limit_reports_feasible_or_unsolved(self):
        m, xs = knapsack_model()
        res = solve_with_branch_bound(m, max_nodes=1)
        assert res.status in (
            SolveStatus.FEASIBLE, SolveStatus.OPTIMAL, SolveStatus.UNSOLVED
        )


@st.composite
def random_models(draw):
    n_vars = draw(st.integers(min_value=1, max_value=8))
    n_cons = draw(st.integers(min_value=0, max_value=6))
    m = IPModel("rand")
    xs = [
        m.add_var(
            f"x{i}",
            draw(st.integers(min_value=-5, max_value=5)),
        )
        for i in range(n_vars)
    ]
    for c in range(n_cons):
        terms = [
            (draw(st.sampled_from([-3, -2, -1, 1, 2, 3])), x)
            for x in draw(
                st.lists(st.sampled_from(xs), min_size=1, max_size=4,
                         unique_by=lambda v: v.index)
            )
        ]
        sense = draw(st.sampled_from(list(Sense)))
        rhs = draw(st.integers(min_value=-4, max_value=4))
        m.add_constraint(terms, sense, rhs, f"c{c}")
    return m


class TestBackendsAgainstBruteForce:
    @settings(deadline=None, max_examples=40)
    @given(random_models())
    def test_all_backends_agree(self, model):
        brute = solve_brute_force(model)
        highs = solve_with_scipy(model)
        bnb = solve_with_branch_bound(model)
        if brute.status is SolveStatus.INFEASIBLE:
            assert highs.status is SolveStatus.INFEASIBLE
            assert bnb.status is SolveStatus.INFEASIBLE
        else:
            assert highs.status is SolveStatus.OPTIMAL
            assert bnb.status is SolveStatus.OPTIMAL
            assert highs.objective == pytest.approx(brute.objective)
            assert bnb.objective == pytest.approx(brute.objective)
            # Returned assignments must actually be feasible.
            assert model.check(highs.values)
            assert model.check(bnb.values)
