"""Tests for CFG construction, RPO, and dominators."""

from repro.analysis import build_cfg, dominates, immediate_dominators
from repro.ir import Cond, IRBuilder, SlotKind


def diamond():
    b = IRBuilder("d")
    pn = b.slot("n", kind=SlotKind.PARAM)
    b.block("entry")
    n = b.load(pn)
    b.cjump(Cond.GT, n, b.imm(0), "left", "right")
    b.block("left")
    b.jump("join")
    b.block("right")
    b.jump("join")
    b.block("join")
    b.ret(n)
    return b.done()


def loop():
    b = IRBuilder("l")
    pn = b.slot("n", kind=SlotKind.PARAM)
    b.block("entry")
    n = b.load(pn)
    i = b.li(0, hint="i")
    b.jump("head")
    b.block("head")
    b.cjump(Cond.LT, i, n, "body", "exit")
    b.block("body")
    b.copy_into(i, b.add(i, b.imm(1)))
    b.jump("head")
    b.block("exit")
    b.ret(i)
    return b.done()


class TestCFG:
    def test_diamond_edges(self):
        cfg = build_cfg(diamond())
        assert set(cfg.succs["entry"]) == {"left", "right"}
        assert cfg.preds["join"] == ("left", "right")
        assert cfg.succs["join"] == ()

    def test_rpo_starts_at_entry(self):
        cfg = build_cfg(diamond())
        assert cfg.rpo[0] == "entry"
        assert cfg.rpo[-1] == "join"

    def test_rpo_loop(self):
        cfg = build_cfg(loop())
        order = {b: i for i, b in enumerate(cfg.rpo)}
        assert order["entry"] < order["head"]
        assert order["head"] < order["body"]

    def test_reachable(self):
        fn = diamond()
        # add an unreachable block
        blk = fn.add_block("dead")
        from repro.ir import Instr, Opcode

        blk.instrs.append(Instr(Opcode.RET))
        cfg = build_cfg(fn)
        assert "dead" not in cfg.reachable()
        assert "dead" in cfg.rpo  # still addressable


class TestDominators:
    def test_diamond(self):
        cfg = build_cfg(diamond())
        idom = immediate_dominators(cfg)
        assert idom["entry"] is None
        assert idom["left"] == "entry"
        assert idom["right"] == "entry"
        assert idom["join"] == "entry"

    def test_loop(self):
        cfg = build_cfg(loop())
        idom = immediate_dominators(cfg)
        assert idom["head"] == "entry"
        assert idom["body"] == "head"
        assert idom["exit"] == "head"

    def test_dominates_reflexive_and_transitive(self):
        cfg = build_cfg(loop())
        idom = immediate_dominators(cfg)
        assert dominates(idom, "entry", "body")
        assert dominates(idom, "head", "head")
        assert not dominates(idom, "body", "head")
