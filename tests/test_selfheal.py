"""Self-healing fleet tests: shard supervision, successor cache
replication, and the crash-durable upgrade journal.

Three failure-recovery layers, each tested at its own level:

* the :class:`UpgradeJournal` as a unit (append/replay/compact, torn
  final line);
* journal recovery end-to-end across a server restart (both the
  already-upgraded-cache fast path and the genuine re-solve path);
* the gateway pieces with real traffic — successor replication
  producing warm cache hits after the owner leaves the ring, the
  supervisor respawning a SIGKILL'd subprocess shard, the restart
  budget abandoning a shard that cannot come back, 503 +
  ``Retry-After`` when the whole fleet is gone, and ring-membership
  checkpoint restore.
"""

from __future__ import annotations

import http.client
import json
import time
from pathlib import Path

import pytest

from repro.__main__ import EXIT_UNAVAILABLE, main as repro_main
from repro.faults import FaultPlan, RetryPolicy, set_injector
from repro.gateway import (
    GatewayClient,
    GatewayConfig,
    GatewayThread,
    LocalShardFleet,
    ShardManager,
    ShardSupervisor,
)
from repro.obs import reset_stats, set_stats_enabled, snapshot
from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceConfig,
    UpgradeJournal,
)
from repro.service.upgrades import JOURNAL_NAME

SOURCE = """
int scale(int a) { return a * 5 + 1; }
"""

#: distinct cheap programs for replication / fail-over traffic
VARIANTS = [
    f"int heal{i}(int a) {{ return a * {i + 2}; }}" for i in range(6)
]


@pytest.fixture(autouse=True)
def stats():
    set_stats_enabled(True)
    reset_stats()
    yield
    set_injector(None)
    set_stats_enabled(False)
    reset_stats()


# -- fault plan knows the new sites ---------------------------------------


def test_fault_plan_parses_selfheal_sites():
    plan = FaultPlan.parse(
        "seed=7;replica_drop=0.5;supervisor_respawn_fail=1.0:2;"
        "journal_torn_write=0.25"
    )
    assert plan.rules["replica_drop"].rate == 0.5
    assert plan.rules["supervisor_respawn_fail"].max_fires == 2
    assert plan.rules["journal_torn_write"].rate == 0.25
    with pytest.raises(ValueError):
        FaultPlan.parse("replica_dorp=1.0")


# -- the journal as a unit ------------------------------------------------


def _queued(trace_id: str) -> dict:
    return {"event": "queued", "trace_id": trace_id,
            "tenant": "", "target": "t", "ir": "x"}


def test_journal_append_replay_compact(tmp_path):
    journal = UpgradeJournal(tmp_path / "j.jsonl")
    journal.append(_queued("t1"))
    journal.append(_queued("t2"))
    journal.append({"event": "done", "trace_id": "t1"})
    incomplete, stats = journal.replay()
    assert list(incomplete) == ["t2"]
    assert stats == {"entries": 3, "skipped": 0}
    # undecodable junk is skipped, never raised
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write("{not json\n")
    incomplete, stats = journal.replay()
    assert list(incomplete) == ["t2"]
    assert stats["skipped"] == 1
    # compaction rewrites to just the open entries
    journal.compact(incomplete)
    incomplete, stats = journal.replay()
    assert list(incomplete) == ["t2"]
    assert stats == {"entries": 1, "skipped": 0}


def test_journal_torn_write_is_skipped_on_replay(tmp_path):
    journal = UpgradeJournal(tmp_path / "j.jsonl")
    journal.append(_queued("good"))
    set_injector("journal_torn_write=1.0")
    journal.append(_queued("torn"))
    set_injector(None)
    assert journal.torn_writes == 1
    # the file ends mid-line, exactly like a SIGKILL mid-append...
    text = journal.path.read_text(encoding="utf-8")
    assert not text.endswith("\n")
    # ...and the journal considers itself dead: nothing more lands
    journal.append(_queued("after-death"))
    assert "after-death" not in journal.path.read_text(encoding="utf-8")
    # replay keeps the good entry and counts the torn line as skipped
    incomplete, stats = journal.replay()
    assert list(incomplete) == ["good"]
    assert stats["skipped"] == 1


# -- journal recovery across a restart ------------------------------------


def _serve_config(tmp_path, name: str, **kw) -> ServiceConfig:
    return ServiceConfig(
        port=0, queue_capacity=16, max_in_flight=2,
        cache_dir=str(tmp_path / name), shard_id=name,
        fast_slo_ms=250.0, **kw,
    )


def _seed_solved_journal(tmp_path) -> tuple[Path, str, str]:
    """Run a fast-tier server, land one background upgrade, and
    return (cache_dir, the journal's queued line, trace_id)."""
    trace_id = "selfheal-seed-1"
    handle = ServerThread(_serve_config(tmp_path, "seed")).start()
    try:
        with ServiceClient("127.0.0.1", handle.port) as client:
            resp = client.check(
                client.allocate(source=SOURCE, trace_id=trace_id))
            assert resp["result"].get("upgrade"), (
                "expected a fast-tier reply with a queued upgrade")
            status = client.wait_optimal(trace_id, timeout=120.0)
            record = status["result"]["upgrade"]
            assert record["state"] == "done", record
    finally:
        handle.drain(timeout=60.0)
    journal_path = tmp_path / "seed" / JOURNAL_NAME
    lines = journal_path.read_text(encoding="utf-8").splitlines()
    queued = [line for line in lines
              if '"queued"' in line and trace_id in line]
    assert queued, lines
    return tmp_path / "seed", queued[0], trace_id


def test_recovery_completes_from_upgraded_cache(tmp_path):
    """A replayed upgrade whose optimal records already hit the cache
    (crash after the put, before the journal's terminal event)
    settles immediately — the idempotent recovery path."""
    cache_dir, queued_line, trace_id = _seed_solved_journal(tmp_path)
    # simulate the crash: the journal says queued, the cache says done
    (cache_dir / JOURNAL_NAME).write_text(
        queued_line + "\n", encoding="utf-8")
    handle = ServerThread(ServiceConfig(
        port=0, queue_capacity=16, max_in_flight=2,
        cache_dir=str(cache_dir), shard_id="reborn",
        fast_slo_ms=250.0,
    )).start()
    try:
        with ServiceClient("127.0.0.1", handle.port) as client:
            stats = client.check(client.stats())["result"]
            journal = stats["tiers"]["upgrades"]["journal"]
            assert journal["enabled"]
            assert journal["recovered"] == 1
            assert journal["recovered_cached"] == 1
            record = client.check(
                client.upgrade_status(trace_id))["result"]["upgrade"]
            assert record["state"] == "done"
            assert record["recovered"] is True
            assert record["optimal_cost"] > 0
            # the promised optimal answer is served, gap closed
            resp = client.check(client.allocate(source=SOURCE))
            assert resp["result"]["tier"] == "ip"
            assert resp["result"]["optimality_gap"] == 0.0
    finally:
        handle.drain(timeout=60.0)


def test_recovery_resolves_unsolved_journal_entry(tmp_path):
    """A replayed upgrade with no cache entry re-queues and solves:
    the crashed shard's promised optimal still lands."""
    _, queued_line, trace_id = _seed_solved_journal(tmp_path)
    fresh = tmp_path / "fresh"
    fresh.mkdir()
    (fresh / JOURNAL_NAME).write_text(
        queued_line + "\n", encoding="utf-8")
    handle = ServerThread(ServiceConfig(
        port=0, queue_capacity=16, max_in_flight=2,
        cache_dir=str(fresh), shard_id="fresh",
        fast_slo_ms=250.0,
    )).start()
    try:
        with ServiceClient("127.0.0.1", handle.port) as client:
            # one long-poll round parks until the recovered solve lands
            record = client.check(client.upgrade_status(
                trace_id, wait_ms=60_000))["result"]["upgrade"]
            assert record["state"] == "done"
            assert record["recovered"] is True
            stats = client.check(client.stats())["result"]
            journal = stats["tiers"]["upgrades"]["journal"]
            assert journal["recovered"] == 1
            assert journal["recovered_cached"] == 0
            resp = client.check(client.allocate(source=SOURCE))
            assert resp["result"]["tier"] == "ip"
            assert resp["result"]["optimality_gap"] == 0.0
    finally:
        handle.drain(timeout=60.0)


def test_upgrade_status_long_poll(tmp_path):
    handle = ServerThread(_serve_config(tmp_path, "lp")).start()
    try:
        with ServiceClient("127.0.0.1", handle.port) as client:
            resp = client.check(client.allocate(
                source=SOURCE, trace_id="lp-1"))
            assert resp["result"].get("upgrade")
            # a single parked round trip returns the terminal record
            record = client.check(client.upgrade_status(
                "lp-1", wait_ms=30_000))["result"]["upgrade"]
            assert record["state"] in ("done", "failed")
            # unknown refs return immediately — nothing is coming
            t0 = time.monotonic()
            missing = client.check(
                client.upgrade_status("no-such", wait_ms=5_000))
            assert missing["result"]["upgrade"] is None
            assert time.monotonic() - t0 < 2.0
            # wait_ms must be numeric
            bad = client.request({
                "verb": "upgrade_status", "request": "lp-1",
                "wait_ms": "soon",
            })
            assert not bad["ok"]
            assert bad["error"]["code"] == "bad_request"
    finally:
        handle.drain(timeout=60.0)


# -- successor cache replication ------------------------------------------


def gw_client(gwt: GatewayThread, **kw) -> GatewayClient:
    return GatewayClient(f"http://127.0.0.1:{gwt.port}", **kw)


def _metric_value(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    return 0.0


def test_replication_warm_hit_on_successor(tmp_path):
    """Acceptance core: after the owner replies, its cache record
    reaches ring successors; when the owner leaves, the re-submitted
    request is a warm replica hit on a successor."""
    shards = []
    for i in range(3):
        config = ServiceConfig(
            port=0, queue_capacity=16, max_in_flight=2,
            cache_dir=str(tmp_path / f"shard-{i}"),
            shard_id=f"shard-{i}",
        )
        shards.append(ServerThread(config).start())
    gwt = GatewayThread(GatewayConfig(
        port=0, probe_interval=0.2, breaker_reset=0.5, replicate=2,
    ))
    for i, shard in enumerate(shards):
        gwt.gateway.register_shard(f"shard-{i}", "127.0.0.1", shard.port)
    gwt.start()
    try:
        with gw_client(gwt) as client:
            resp = client.allocate(source=VARIANTS[0], tenant="acme")
            assert resp["ok"], resp
            owner = resp["gateway"]["shard"]
            # exact-tier replies carry fingerprints; replication is
            # asynchronous, so poll the gateway's counter
            deadline = time.monotonic() + 15.0
            replicated = 0.0
            while time.monotonic() < deadline:
                replicated = _metric_value(
                    client.metrics(), "repro_gateway_replicated_total")
                if replicated >= 1:
                    break
                time.sleep(0.1)
            assert replicated >= 1
            # the owner leaves; its keyspace remaps to the successors
            gwt.gateway.manager.leave(owner)
            again = client.allocate(source=VARIANTS[0], tenant="acme")
            assert again["ok"], again
            assert again["gateway"]["shard"] != owner
            assert all(fn.get("cache_hit")
                       for fn in again["result"]["functions"])
        stats = snapshot()
        assert stats.get("engine.cache_replica_hits", 0) >= 1
        assert stats.get("engine.cache_replicas_stored", 0) >= 1
        assert stats.get("gateway.replicated", 0) >= 1
    finally:
        gwt.stop()
        for shard in shards:
            try:
                shard.drain(timeout=60.0)
            except RuntimeError:
                pass


def test_replica_drop_fault_site_counts(tmp_path):
    """With replica_drop at 1.0 nothing replicates — but serving is
    unaffected (replication is strictly best-effort)."""
    shards = []
    for i in range(2):
        config = ServiceConfig(
            port=0, queue_capacity=16, max_in_flight=2,
            cache_dir=str(tmp_path / f"shard-{i}"),
            shard_id=f"shard-{i}",
        )
        shards.append(ServerThread(config).start())
    gwt = GatewayThread(GatewayConfig(
        port=0, probe_interval=0.2, replicate=1,
    ))
    for i, shard in enumerate(shards):
        gwt.gateway.register_shard(f"shard-{i}", "127.0.0.1", shard.port)
    gwt.start()
    set_injector("replica_drop=1.0")
    try:
        with gw_client(gwt) as client:
            resp = client.allocate(source=VARIANTS[1])
            assert resp["ok"], resp
            deadline = time.monotonic() + 10.0
            dropped = 0.0
            while time.monotonic() < deadline:
                dropped = snapshot().get("gateway.replica_dropped", 0)
                if dropped >= 1:
                    break
                time.sleep(0.1)
        assert dropped >= 1
        assert snapshot().get("gateway.replicated", 0) == 0
    finally:
        set_injector(None)
        gwt.stop()
        for shard in shards:
            try:
                shard.drain(timeout=60.0)
            except RuntimeError:
                pass


# -- shard supervision (subprocess fleet) ---------------------------------


def test_supervisor_respawns_sigkilled_shard(tmp_path):
    """Acceptance core: SIGKILL a spawned shard; the supervisor
    respawns it with its original id, port, and cache dir, and it
    rejoins the ring through the normal probe path."""
    fleet = LocalShardFleet(
        count=2, cache_root=str(tmp_path), time_limit=8.0)
    fleet.start()
    gwt = GatewayThread(GatewayConfig(
        port=0, probe_interval=0.2, probe_timeout=5.0,
        breaker_threshold=1, breaker_reset=0.3,
    ))
    supervisor = ShardSupervisor(
        fleet, gwt.gateway.manager, restart_budget=3,
        poll_interval=0.1,
        policy=RetryPolicy(base_delay=0.01, max_delay=0.05),
    )
    gwt.gateway.supervisor = supervisor
    for shard in fleet.shards:
        gwt.gateway.register_shard(
            shard.shard_id, "127.0.0.1", shard.port)
    gwt.start()
    try:
        with gw_client(gwt, timeout=120.0) as client:
            assert client.allocate(source=VARIANTS[2])["ok"]
            victim = fleet.shards[0]
            old_pid = victim.process.pid
            old_port = victim.port
            assert fleet.kill(victim.shard_id)
            # one supervision pass reaps and respawns
            assert supervisor.check() == [victim.shard_id]
            fresh = fleet.shards[0]
            assert fresh.process.pid != old_pid
            assert fresh.port == old_port
            assert fresh.cache_dir == victim.cache_dir
            # the shard is (or becomes) ring-routable within the
            # probe budget
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                shard = gwt.gateway.manager.get(victim.shard_id)
                if shard is not None and shard.state == "up":
                    break
                time.sleep(0.1)
            assert gwt.gateway.manager.get(victim.shard_id).state == "up"
            assert victim.shard_id in gwt.gateway.manager.ring.nodes()
            # traffic still flows, and status reports the restart
            assert client.allocate(source=VARIANTS[3])["ok"]
            status = client.status()["result"]
            assert status["supervisor"]["restarts"] == {
                victim.shard_id: 1}
    finally:
        gwt.stop()
        fleet.stop()


def test_supervisor_budget_exhaustion_keeps_gateway_up(tmp_path):
    """A shard that cannot respawn is abandoned — off the ring, with
    the gateway and the rest of the fleet unharmed."""
    fleet = LocalShardFleet(
        count=1, cache_root=str(tmp_path / "fleet"), time_limit=8.0)
    fleet.start()
    survivor = ServerThread(ServiceConfig(
        port=0, queue_capacity=16, max_in_flight=2,
        cache_dir=str(tmp_path / "live"), shard_id="live-0",
    )).start()
    gwt = GatewayThread(GatewayConfig(
        port=0, probe_interval=0.2, breaker_threshold=1,
        breaker_reset=0.3,
    ))
    supervisor = ShardSupervisor(
        fleet, gwt.gateway.manager, restart_budget=2,
        poll_interval=0.1,
        policy=RetryPolicy(base_delay=0.01, max_delay=0.02),
    )
    gwt.gateway.supervisor = supervisor
    for shard in fleet.shards:
        gwt.gateway.register_shard(
            shard.shard_id, "127.0.0.1", shard.port)
    gwt.gateway.register_shard("live-0", "127.0.0.1", survivor.port)
    gwt.start()
    set_injector("supervisor_respawn_fail=1.0")
    try:
        assert fleet.kill("shard-0")
        assert supervisor.check() == []
        snap = supervisor.snapshot()
        assert snap["exhausted"] == ["shard-0"]
        assert snap["restarts"] == {}
        # abandoned: administratively off the ring, prober ignores it
        assert gwt.gateway.manager.get("shard-0").state == "left"
        assert "shard-0" not in gwt.gateway.manager.ring.nodes()
        # a later pass does not retry an exhausted shard
        assert supervisor.check() == []
        # the gateway keeps serving on the survivor
        with gw_client(gwt) as client:
            assert client.healthz()["ok"]
            resp = client.allocate(source=VARIANTS[4])
            assert resp["ok"], resp
            assert resp["gateway"]["shard"] == "live-0"
        assert snapshot().get("gateway.shards_abandoned", 0) == 1
    finally:
        set_injector(None)
        gwt.stop()
        fleet.stop()
        try:
            survivor.drain(timeout=60.0)
        except RuntimeError:
            pass


# -- 503 + Retry-After when the whole fleet is gone -----------------------


def test_gateway_unavailable_sets_retry_after_header(tmp_path):
    gwt = GatewayThread(GatewayConfig(port=0, probe_interval=2.0))
    gwt.start()
    try:
        conn = http.client.HTTPConnection("127.0.0.1", gwt.port,
                                          timeout=30.0)
        body = json.dumps({"source": SOURCE})
        conn.request("POST", "/v1/allocate", body,
                     {"Content-Type": "application/json"})
        reply = conn.getresponse()
        payload = json.loads(reply.read())
        conn.close()
        assert reply.status == 503
        assert int(reply.headers["Retry-After"]) >= 1
        assert payload["error"]["code"] == "unavailable"
        assert payload["gateway"]["retry_after"] >= 1
    finally:
        gwt.stop()


def test_submit_gateway_unavailable_exit_code(tmp_path, capsys):
    program = tmp_path / "p.c"
    program.write_text(SOURCE)
    gwt = GatewayThread(GatewayConfig(port=0)).start()
    try:
        code = repro_main([
            "submit", str(program),
            "--gateway", f"http://127.0.0.1:{gwt.port}",
        ])
    finally:
        gwt.stop()
    assert code == EXIT_UNAVAILABLE
    assert "unavailable" in capsys.readouterr().err


# -- ring-membership checkpoint -------------------------------------------


def test_gateway_checkpoint_restore(tmp_path):
    state = tmp_path / "gateway-state.json"
    shard = ServerThread(ServiceConfig(
        port=0, queue_capacity=16, max_in_flight=2,
        cache_dir=str(tmp_path / "alpha"), shard_id="alpha",
    )).start()
    try:
        first = GatewayThread(GatewayConfig(
            port=0, probe_interval=0.2, state_file=str(state)))
        first.gateway.register_shard("alpha", "127.0.0.1", shard.port)
        # a shard that left stays left across the restart
        first.gateway.manager.add("ghost", "127.0.0.1", 1)
        first.gateway.manager.leave("ghost")
        first.start()
        first.stop()
        saved = json.loads(state.read_text(encoding="utf-8"))
        states = {s["id"]: s["state"] for s in saved["shards"]}
        assert states == {"alpha": "up", "ghost": "left"}
        # a fresh gateway with only the state file re-fronts the fleet
        second = GatewayThread(GatewayConfig(
            port=0, probe_interval=0.2, state_file=str(state)))
        second.start()
        try:
            assert second.gateway.manager.ring.nodes() == ["alpha"]
            assert second.gateway.manager.get("ghost").state == "left"
            with gw_client(second) as client:
                resp = client.allocate(source=VARIANTS[5])
                assert resp["ok"], resp
                assert resp["gateway"]["shard"] == "alpha"
        finally:
            second.stop()
        assert snapshot().get("gateway.checkpoint_restored", 0) >= 2
    finally:
        try:
            shard.drain(timeout=60.0)
        except RuntimeError:
            pass


def test_manager_add_adopts_new_address():
    """Re-registering a known shard id under a new port swaps in a
    fresh pool and breaker — a checkpoint restore must not pin a
    respawned fleet to its predecessor's dead ephemeral ports."""
    manager = ShardManager()
    shard = manager.add("shard-0", "127.0.0.1", 1111)
    old_pool = shard.pool
    shard.breaker.record_failure()
    assert manager.add("shard-0", "127.0.0.1", 2222) is shard
    assert (shard.host, shard.port) == ("127.0.0.1", 2222)
    assert shard.pool is not old_pool
    assert shard.pool.port == 2222
    assert shard.breaker.snapshot()["consecutive_failures"] == 0
    assert shard.state == "up"
    # same id + same address stays idempotent
    assert manager.add("shard-0", "127.0.0.1", 2222) is shard
    assert shard.pool.port == 2222
    # a left shard re-added on a new port rejoins the ring too
    manager.leave("shard-0")
    manager.add("shard-0", "127.0.0.1", 3333)
    assert shard.state == "up"
    assert shard.port == 3333
    assert "shard-0" in manager.ring.nodes()
    manager.stop()


def test_checkpoint_restore_then_respawned_fleet_is_reachable(
        tmp_path):
    """Regression: gateway restart with --state-file + a freshly
    spawned fleet.  The restore re-registers shard ids at their old
    (now dead) ports; the spawn's register_shard must displace them,
    or every request 503s against the stale ports."""
    state = tmp_path / "gateway-state.json"
    state.write_text(json.dumps({"shards": [
        {"id": "alpha", "host": "127.0.0.1", "port": 1,
         "state": "up"},
    ]}), encoding="utf-8")
    shard = ServerThread(ServiceConfig(
        port=0, queue_capacity=16, max_in_flight=2,
        cache_dir=str(tmp_path / "alpha"), shard_id="alpha",
    )).start()
    gwt = GatewayThread(GatewayConfig(
        port=0, probe_interval=0.2, state_file=str(state)))
    try:
        # restore happened at construction: stale port 1 is in place
        assert gwt.gateway.manager.get("alpha").port == 1
        # the spawned fleet re-registers on its live port
        gwt.gateway.register_shard("alpha", "127.0.0.1", shard.port)
        assert gwt.gateway.manager.get("alpha").port == shard.port
        gwt.start()
        with gw_client(gwt) as client:
            resp = client.allocate(source=VARIANTS[0])
            assert resp["ok"], resp
            assert resp["gateway"]["shard"] == "alpha"
    finally:
        gwt.stop()
        try:
            shard.drain(timeout=60.0)
        except RuntimeError:
            pass
