"""Tests for the register file and the §5.3 overlap structure."""

from repro.target import (
    RegPart,
    risc_register_file,
    x86_register_file,
)


class TestOverlap:
    def setup_method(self):
        self.rf = x86_register_file()

    def test_full_overlaps_parts(self):
        eax = self.rf["EAX"]
        for name in ("AX", "AL", "AH"):
            assert eax.overlaps(self.rf[name])

    def test_al_ah_disjoint(self):
        # The paper's subtlety: AL and AH share no bits.
        assert not self.rf["AL"].overlaps(self.rf["AH"])
        assert self.rf["AL"].overlaps(self.rf["AX"])
        assert self.rf["AH"].overlaps(self.rf["AX"])

    def test_cross_family_disjoint(self):
        assert not self.rf["EAX"].overlaps(self.rf["EBX"])
        assert not self.rf["AL"].overlaps(self.rf["BL"])

    def test_overlapping_query(self):
        names = {r.name for r in self.rf.overlapping(self.rf["AX"])}
        assert names == {"EAX", "AX", "AL", "AH"}
        names = {r.name for r in self.rf.overlapping(self.rf["AL"])}
        assert names == {"EAX", "AX", "AL"}


class TestChainSets:
    def test_x86_chains_match_paper(self):
        rf = x86_register_file()
        chains = {
            tuple(sorted(r.name for r in chain))
            for chain in rf.chain_sets
        }
        # Paper §5.3: EAX belongs to {EAX, AX, AL} and {EAX, AX, AH}.
        assert ("AL", "AX", "EAX") in chains
        assert ("AH", "AX", "EAX") in chains
        assert ("ESI", "SI") in chains
        # Eight-bit-less families have a single two-element chain.
        assert ("DI", "EDI") in chains

    def test_chain_count(self):
        rf = x86_register_file()
        # A-D: 2 chains each; SI, DI, BP, SP: 1 each = 12.
        assert len(rf.chain_sets) == 12

    def test_chains_of(self):
        rf = x86_register_file()
        assert len(rf.chain_sets_of(rf["EAX"])) == 2
        assert len(rf.chain_sets_of(rf["AL"])) == 1
        assert len(rf.chain_sets_of(rf["SI"])) == 1

    def test_risc_chains_are_singletons(self):
        rf = risc_register_file(8)
        assert len(rf.chain_sets) == 8
        assert all(len(c) == 1 for c in rf.chain_sets)


class TestLookup:
    def test_widths(self):
        rf = x86_register_file()
        assert {r.name for r in rf.of_width(32)} >= {"EAX", "ESI", "ESP"}
        assert {r.name for r in rf.of_width(8)} == {
            "AL", "AH", "BL", "BH", "CL", "CH", "DL", "DH",
        }

    def test_family_member_prefers_low(self):
        rf = x86_register_file()
        assert rf.family_member("A", 8).name == "AL"
        assert rf.family_member("A", 16).name == "AX"
        assert rf.family_member("A", 32).name == "EAX"
        assert rf.family_member("SI", 8) is None

    def test_parts(self):
        assert RegPart.HIGH8.bit_range == (8, 16)
        assert RegPart.LOW16.bit_range == (0, 16)
        assert RegPart.FULL32.bits == 32
