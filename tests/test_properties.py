"""Property-based end-to-end tests: for random programs, both allocators
produce structurally valid, semantically equivalent code, and the IP
allocator's objective is never worse than what the baseline achieves
under the same cost model.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocation import validate_allocation
from repro.analysis import profiled_frequencies
from repro.baseline import GraphColoringAllocator
from repro.bench.generator import GeneratorConfig, generate_module
from repro.core import AllocatorConfig, IPAllocator
from repro.ir import verify_function
from repro.sim import AllocatedFunction, Interpreter
from repro.target import x86_target

TARGET = x86_target()
SMALL = GeneratorConfig(n_functions=2, body_statements=(2, 6))


@settings(
    deadline=None, max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.integers(min_value=0, max_value=100_000))
def test_both_allocators_correct_on_random_programs(seed):
    module = generate_module(seed, SMALL)
    for fn in module:
        verify_function(fn)
    ref = Interpreter(module).run("main", [3])

    ip_allocs = {}
    gc_allocs = {}
    for fn in module:
        freq = profiled_frequencies(fn, ref.blocks_of(fn.name))
        a = IPAllocator(TARGET).allocate(fn, freq)
        assert a.succeeded, (seed, fn.name, a.status)
        validate_allocation(a, TARGET)
        ip_allocs[fn.name] = AllocatedFunction(a.function, a.assignment)
        g = GraphColoringAllocator(TARGET).allocate(fn, freq)
        assert g.succeeded, (seed, fn.name)
        validate_allocation(g, TARGET)
        gc_allocs[fn.name] = AllocatedFunction(g.function, g.assignment)

    ip = Interpreter(module, target=TARGET, allocations=ip_allocs) \
        .run("main", [3])
    gc = Interpreter(module, target=TARGET, allocations=gc_allocs) \
        .run("main", [3])
    assert ip.return_value == ref.return_value
    assert gc.return_value == ref.return_value


@settings(
    deadline=None, max_examples=8,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.integers(min_value=0, max_value=100_000))
def test_ip_allocation_survives_feature_toggles(seed):
    """Every §5 feature disabled individually must still give valid,
    correct allocations (the feature set changes cost, not safety)."""
    module = generate_module(
        seed, GeneratorConfig(n_functions=1, body_statements=(2, 5))
    )
    ref = Interpreter(module).run("main", [2])
    toggles = [
        {"enable_copy_insertion": False},
        {"enable_memory_operands": False},
        {"enable_rematerialization": False},
        {"enable_predefined_memory": False},
        {"enable_encoding_costs": False},
        {"enable_copy_deletion": False},
    ]
    for overrides in toggles:
        config = AllocatorConfig(**overrides)
        allocs = {}
        ok = True
        for fn in module:
            a = IPAllocator(TARGET, config).allocate(fn)
            if not a.succeeded:
                # Only copy insertion is allowed to break feasibility
                # (implicit-register operands may need copies).
                assert overrides.get("enable_copy_insertion") is False, (
                    seed, overrides, fn.name
                )
                ok = False
                break
            validate_allocation(a, TARGET)
            allocs[fn.name] = AllocatedFunction(a.function, a.assignment)
        if not ok:
            continue
        got = Interpreter(module, target=TARGET, allocations=allocs) \
            .run("main", [2])
        assert got.return_value == ref.return_value, (seed, overrides)
