"""End-to-end tests of the IP allocator: every §5 extension observable.

Each test builds a function that isolates one irregularity, allocates
with the IP allocator, validates structurally, and checks semantics on
the interpreter with clobber scrambling enabled.
"""

import pytest

from repro.allocation import validate_allocation
from repro.core import ActionKind, AllocatorConfig, IPAllocator
from repro.ir import (
    Address,
    Cond,
    I8,
    I32,
    IRBuilder,
    Module,
    Opcode,
    SlotKind,
    format_function,
)
from repro.sim import AllocatedFunction, Interpreter


def check(module, fn_name, args, x86, config=None):
    fn = module.functions[fn_name]
    alloc = IPAllocator(x86, config or AllocatorConfig()).allocate(fn)
    assert alloc.succeeded, alloc.status
    validate_allocation(alloc, x86)
    ref = Interpreter(module).run(fn_name, args).return_value
    got = Interpreter(
        module, target=x86,
        allocations={fn_name: AllocatedFunction(
            alloc.function, alloc.assignment
        )},
    ).run(fn_name, args).return_value
    assert got == ref, (got, ref)
    return alloc


class TestCombinedSpecifier:
    """§5.1: two-address constraint and copy insertion."""

    def test_dying_source_reuses_register(self, x86):
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        d = b.add(n, b.imm(1))  # n dies here
        b.ret(d)
        m.add_function(b.done())
        alloc = check(m, "f", [5], x86)
        # No copy needed: dst takes the dying source's register.
        assert alloc.stats.copies_inserted == 0

    def test_live_source_forces_copy_or_spill(self, x86):
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        d = b.sub(n, b.imm(1))  # non-commutative, n live after
        b.ret(b.add(d, n))
        m.add_function(b.done())
        alloc = check(m, "f", [10], x86)
        # Keeping n requires an inserted copy (cheapest way).
        assert alloc.stats.copies_inserted >= 1

    def test_commutative_chooses_better_operand(self, x86):
        # d = a + b where a live after but b dies: solver should tie b,
        # needing no copy — the traditional approach may pick wrong.
        m = Module("t")
        b = IRBuilder("f")
        pa = b.slot("a", kind=SlotKind.PARAM)
        pb = b.slot("b", kind=SlotKind.PARAM)
        b.block("entry")
        a = b.load(pa)
        bb = b.load(pb)
        d = b.add(a, bb)
        b.ret(b.mul(d, a))  # a live after the add
        m.add_function(b.done())
        alloc = check(m, "f", [3, 4], x86)
        assert alloc.stats.copies_inserted == 0

    def test_reversed_sub(self, x86):
        from repro.ir import Instr

        m = Module("t")
        b = IRBuilder("f")
        b.block("entry")
        a = b.li(10, hint="a")
        c = b.li(3, hint="c")
        b.emit(Instr(Opcode.SUB, dst=a, srcs=(c, a)))
        b.ret(a)
        m.add_function(b.done())
        check(m, "f", [], x86)


class TestMemoryOperands:
    """§5.2: memory operands and combined memory use/def."""

    def test_memuse_under_pressure(self, x86):
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        vals = [b.add(n, b.imm(k), hint=f"v{k}") for k in range(8)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        m.add_function(b.done())
        alloc = check(m, "f", [100], x86)
        # With 9 live values and 6 registers, memory operands or spills
        # must appear; the allocator prefers memory operands (cheaper
        # than load+use).
        assert (alloc.stats.mem_operand_uses + alloc.stats.loads) > 0

    def test_memory_operands_can_be_disabled(self, x86):
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        vals = [b.add(n, b.imm(k), hint=f"v{k}") for k in range(8)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        m.add_function(b.done())
        config = AllocatorConfig(enable_memory_operands=False)
        alloc = check(m, "f", [100], x86, config)
        assert alloc.stats.mem_operand_uses == 0
        assert alloc.stats.rmw_mem_defs == 0

    def test_rmw_requires_same_vreg(self, x86):
        # cmemud only for 'a = a op b' shapes; verify a mem_dst
        # instruction appears under pressure for such a shape.
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        acc = b.vreg("acc")
        from repro.ir import Immediate, Instr

        b.emit(Instr(Opcode.LI, dst=acc, srcs=(Immediate(0, I32),)))
        others = [b.add(n, b.imm(k), hint=f"v{k}") for k in range(7)]
        for v in others:
            b.emit(Instr(Opcode.ADD, dst=acc, srcs=(acc, v)))
        total = b.li(0, hint="total")
        for v in others:
            b.emit(Instr(Opcode.ADD, dst=total, srcs=(total, v)))
        b.ret(b.add(acc, total))
        m.add_function(b.done())
        check(m, "f", [50], x86)


class TestOverlap:
    """§5.3: overlapping registers."""

    def test_many_bytes_share_families(self, x86):
        # Eight 8-bit values live at once fit in 4 families (AL+AH...).
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", I8, kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        vals = [b.add(n, b.imm(k, I8), hint=f"c{k}") for k in range(7)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(b.sext(acc, I32))
        m.add_function(b.done())
        alloc = check(m, "f", [3], x86)
        # All eight i8 values (plus n) can live in registers at once
        # only because AL/AH-style pairs are independent.
        regs = {r.name for r in alloc.assignment.values()}
        highs = {"AH", "BH", "CH", "DH"}
        assert regs & highs, f"expected high-byte usage, got {regs}"

    def test_wide_value_blocks_sub_registers(self, x86):
        # A 32-bit value in EAX excludes i8 values from AL/AH there.
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        c = b.trunc(n, I8)
        c2 = b.add(c, b.imm(1, I8))
        w = b.add(n, b.imm(7))
        b.ret(b.add(w, b.sext(c2, I32)))
        m.add_function(b.done())
        alloc = check(m, "f", [9], x86)
        validate_allocation(alloc, x86)  # overlap capacity holds


class TestImplicitRegisters:
    def test_div_chain(self, x86):
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        pm = b.slot("m", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        d = b.load(pm)
        q = b.div(n, d)
        r = b.mod(n, d)
        b.ret(b.add(q, r))
        m.add_function(b.done())
        alloc = check(m, "f", [100, 7], x86)
        # quotient born in EAX, remainder in EDX
        assigned = {k: v.name for k, v in alloc.assignment.items()}
        assert any(v == "EAX" for v in assigned.values())
        assert any(v == "EDX" for v in assigned.values())

    def test_shift_count_in_cl(self, x86):
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        pc = b.slot("c", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        c = b.load(pc)
        b.ret(b.shl(n, c))
        m.add_function(b.done())
        alloc = check(m, "f", [3, 4], x86)
        assert "ECX" in {r.name for r in alloc.assignment.values()}

    def test_return_lands_in_eax(self, x86):
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        b.ret(n)
        m.add_function(b.done())
        alloc = check(m, "f", [5], x86)
        # The returned value must be available in EAX at the ret.
        rets = [i for _, _, i in alloc.function.instructions()
                if i.opcode is Opcode.RET]
        src = rets[0].srcs[0]
        assert alloc.assignment[src.name].name == "EAX"


class TestPredefinedMemory:
    """§5.5: coalescing with predefined memory values."""

    def test_cold_param_coalesced(self, x86):
        # A parameter used once in cold code: coalescing deletes the
        # defining load.
        m = Module("t")
        b = IRBuilder("f")
        pa = b.slot("a", kind=SlotKind.PARAM)
        pb = b.slot("b", kind=SlotKind.PARAM)
        b.block("entry")
        a = b.load(pa)
        bb = b.load(pb)
        b.cjump(Cond.GT, a, b.imm(0), "hot", "cold")
        b.block("hot")
        b.ret(a)
        b.block("cold")
        b.ret(b.add(bb, a))
        m.add_function(b.done())
        alloc = check(m, "f", [5, 3], x86)
        assert alloc.stats.loads_deleted >= 1

    def test_stored_slot_not_coalesced(self, x86):
        # If the function stores to the param slot, §5.5 must not fire.
        m = Module("t")
        b = IRBuilder("f")
        pa = b.slot("a", kind=SlotKind.PARAM)
        b.block("entry")
        a = b.load(pa)
        b.store(pa, b.imm(0))  # slot written!
        b.ret(a)
        m.add_function(b.done())
        alloc = check(m, "f", [5], x86)
        assert alloc.stats.loads_deleted == 0

    def test_coalescing_can_be_disabled(self, x86):
        m = Module("t")
        b = IRBuilder("f")
        pa = b.slot("a", kind=SlotKind.PARAM)
        b.block("entry")
        a = b.load(pa)
        b.ret(a)
        m.add_function(b.done())
        config = AllocatorConfig(enable_predefined_memory=False)
        alloc = check(m, "f", [5], x86, config)
        assert alloc.stats.loads_deleted == 0


class TestRemat:
    def test_constant_rematerialised_over_call(self, x86):
        m = Module("t")
        b = IRBuilder("id")
        pa = b.slot("a", kind=SlotKind.PARAM)
        b.block("entry")
        b.ret(b.load(pa))
        m.add_function(b.done())

        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        c = b.li(12345, hint="c")
        # Use the constant, call (clobbers), use it again... plus keep
        # enough pressure that keeping c in B/SI/DI is not free.
        x1 = b.add(n, c)
        r = b.call("id", [x1])
        keep = [b.add(n, b.imm(k), hint=f"k{k}") for k in range(3)]
        acc = b.add(r, c)
        for v in keep:
            acc = b.add(acc, v)
        b.ret(acc)
        m.add_function(b.done())
        alloc = check(m, "f", [10], x86)
        # The solver may choose remat or callee-saved residency; with
        # remat enabled it must never be *worse* than with it disabled.
        config = AllocatorConfig(enable_rematerialization=False)
        worse = IPAllocator(x86, config).allocate(
            m.functions["f"]
        )
        assert alloc.objective <= worse.objective + 1e-9


class TestCopyDeletion:
    def test_input_copy_deleted(self, x86):
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        x = b.vreg("x")
        b.copy_into(x, n)  # genuine copy: both live after? n unused
        b.ret(b.add(x, b.imm(1)))
        m.add_function(b.done())
        alloc = check(m, "f", [5], x86)
        copies = [i for _, _, i in alloc.function.instructions()
                  if i.opcode is Opcode.COPY]
        assert not copies
        assert alloc.stats.copies_deleted >= 1


class TestSolverPlumbing:
    def test_model_sizes_reported(self, x86, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        alloc = IPAllocator(x86).allocate(fn)
        assert alloc.n_variables > 0
        assert alloc.n_constraints > 0
        assert alloc.solve_seconds >= 0

    def test_branch_bound_backend(self, x86):
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        b.ret(b.add(n, b.imm(1)))
        m.add_function(b.done())
        config = AllocatorConfig(backend="branch-bound", time_limit=60)
        alloc = check(m, "f", [4], x86, config)
        assert alloc.status == "optimal"

    def test_time_limit_zero_fails_gracefully(self, x86,
                                              loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        config = AllocatorConfig(backend="branch-bound",
                                 time_limit=0.0)
        alloc = IPAllocator(x86, config).allocate(fn)
        assert alloc.status in ("failed", "feasible", "optimal")
