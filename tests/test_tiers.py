"""Tests for the tiered allocation subsystem (repro.tiers).

Covers the linear-scan fast tier (parity with the exact IP on the
figure workloads, conservative §5 spill/refuse behaviour), the tier
policy's degradation ordering, the background upgrade queue (tenant
fairness, bounds, drain), the cache upgrade-in-place vs. LRU
interaction, and the service wiring end to end (fast reply within the
SLO, background optimal upgrade, SIGTERM drain).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.allocation import validate_allocation
from repro.bench.workloads import load_all
from repro.core import AllocatorConfig
from repro.engine import AllocationEngine, EngineConfig
from repro.engine.cache import CacheRecord, ResultCache
from repro.ir import I8, I32, IRBuilder, Module, SlotKind
from repro.obs import reset_stats, set_stats_enabled, snapshot
from repro.service import ServerThread, ServiceClient, ServiceConfig
from repro.service.upgrades import UpgradeJob, UpgradeQueue
from repro.sim import AllocatedFunction, Interpreter
from repro.target import x86_target
from repro.tiers import (
    TIER_BASELINE,
    TIER_FAST,
    TIER_IP,
    LinearScanAllocator,
    LinearScanFailure,
    TierPolicy,
    fast_allocate,
    optimality_gap,
    tier_cost,
)

SOURCE = """
int helper(int a) { return a * 3; }
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i += 1) { s += helper(i); }
    return s;
}
"""


@pytest.fixture(autouse=True)
def stats():
    set_stats_enabled(True)
    reset_stats()
    yield
    set_stats_enabled(False)
    reset_stats()


class TestLinearScanParity:
    """Fast tier vs. exact IP on the figure workloads."""

    def test_fig_set_parity(self, x86):
        """Every fast answer is validator-clean and never beats the
        optimum under the shared tier_cost model (gap >= 0)."""
        config = AllocatorConfig(time_limit=16.0)
        checked = 0
        for bench, module in load_all():
            engine = AllocationEngine(
                x86, config, EngineConfig(jobs=1)
            )
            outcomes = engine.allocate_module(list(module))
            for fn in module:
                alloc, tier, fast_cost = fast_allocate(fn, x86)
                assert tier in (TIER_FAST, TIER_BASELINE)
                validate_allocation(alloc, x86)
                final = outcomes.outcome(fn.name).final
                if not final.succeeded:
                    continue
                if outcomes.outcome(fn.name).attempt.status != "optimal":
                    continue  # no optimum to compare against
                optimal_cost = tier_cost(final, x86)
                # Unclamped: a heuristic must never price below the
                # proven optimum (tiny float slack for rounding).
                assert fast_cost >= optimal_cost - 1e-6, (
                    bench.name, fn.name, fast_cost, optimal_cost
                )
                assert optimality_gap(fast_cost, optimal_cost) >= 0.0
                checked += 1
        assert checked >= 10  # the fig set actually exercised parity

    def test_fast_allocations_run_correctly(self, x86):
        """Fast-tier code computes the same results as unallocated IR
        on a real workload (not just structural validity)."""
        for bench, module in load_all():
            ref = Interpreter(module).run(bench.entry, list(bench.args))
            allocs = {}
            for fn in module:
                a, _, _ = fast_allocate(fn, x86)
                allocs[fn.name] = AllocatedFunction(
                    a.function, a.assignment
                )
            got = Interpreter(
                module, target=x86, allocations=allocs
            ).run(bench.entry, list(bench.args))
            assert got.return_value == ref.return_value, bench.name


class TestConservativeIrregularity:
    """§5 cases the scan must survive by spilling — never by emitting
    an invalid assignment."""

    @staticmethod
    def build_div_pressure() -> Module:
        """DIV/MOD (EAX/EDX implicit pair) under full register
        pressure: the scan must keep the pair free or spill."""
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        pm = b.slot("m", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        d = b.load(pm)
        live = [b.add(n, b.imm(k), hint=f"v{k}") for k in range(6)]
        q = b.div(n, d)
        r = b.mod(n, d)
        acc = b.add(q, r)
        for v in live:
            acc = b.add(acc, v)
        b.ret(acc)
        m.add_function(b.done())
        return m

    @staticmethod
    def build_byte_overlap() -> Module:
        """Eight i8 values live at once: only legal through AL/AH-style
        sub-register packing or spilling — never double occupancy."""
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", I8, kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        vals = [b.add(n, b.imm(k, I8), hint=f"c{k}") for k in range(7)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(b.sext(acc, I32))
        m.add_function(b.done())
        return m

    def _check(self, module, args, x86):
        fn = module.functions["f"]
        try:
            alloc = LinearScanAllocator(x86).allocate(fn)
        except LinearScanFailure:
            return None  # refusal is an allowed conservative outcome
        validate_allocation(alloc, x86)
        ref = Interpreter(module).run("f", args).return_value
        got = Interpreter(
            module, target=x86,
            allocations={"f": AllocatedFunction(
                alloc.function, alloc.assignment
            )},
        ).run("f", args).return_value
        assert got == ref, (got, ref)
        return alloc

    def test_div_pair_under_pressure(self, x86):
        alloc = self._check(self.build_div_pressure(), [100, 7], x86)
        if alloc is not None:
            names = {r.name for r in alloc.assignment.values()}
            assert "EAX" in names and "EDX" in names

    def test_shift_count_family(self, x86):
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        pc = b.slot("c", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        c = b.load(pc)
        b.ret(b.shl(n, c))
        m.add_function(b.done())
        alloc = self._check(m, [3, 4], x86)
        if alloc is not None:
            assert "ECX" in {r.name for r in alloc.assignment.values()}

    def test_sub_register_overlap(self, x86):
        self._check(self.build_byte_overlap(), [3], x86)


class TestDegradationOrdering:
    """SLO-miss ordering: the fast tier degrades to coloring, never
    straight past it to the IP."""

    def test_policy_orders_fast_before_coloring(self):
        decision = TierPolicy(fast_slo_ms=50.0).decide()
        assert decision.tier == TIER_FAST
        assert decision.upgrade
        assert decision.fallbacks == (TIER_BASELINE,)

    def test_disabled_policy_goes_straight_to_ip(self):
        decision = TierPolicy(fast_slo_ms=0.0).decide()
        assert decision.tier == TIER_IP
        assert not decision.upgrade

    def test_report_requests_bypass_the_fast_tier(self):
        decision = TierPolicy(fast_slo_ms=50.0).decide(
            wants_report=True
        )
        assert decision.tier == TIER_IP
        assert not decision.upgrade

    def test_refusal_degrades_to_coloring(
        self, x86, loop_sum_module, monkeypatch
    ):
        def refuse(self, fn, freq=None):
            raise LinearScanFailure("forced refusal")

        monkeypatch.setattr(LinearScanAllocator, "allocate", refuse)
        fn = loop_sum_module.functions["sum"]
        alloc, tier, cost = fast_allocate(fn, x86)
        assert tier == TIER_BASELINE
        validate_allocation(alloc, x86)
        assert cost > 0
        assert snapshot()["tiers.fast_fallbacks"] == 1


class TestUpgradeQueue:
    @staticmethod
    def job(tag: str, tenant: str) -> UpgradeJob:
        return UpgradeJob(
            trace_id=tag, tenant=tenant, target_name="x86",
            config=None, functions=[],
            fast={"f": {"tier": TIER_FAST, "cost": 1.0}},
            fast_cost=1.0, request_id=f"id-{tag}",
        )

    def test_tenant_fairness_under_mixed_burst(self):
        """Round-robin across tenants: a chatty tenant's backlog does
        not starve single jobs from other tenants."""
        order: list[str] = []
        queue = UpgradeQueue(
            runner=lambda job: order.append(job.trace_id) or {},
            capacity=16,
        )
        # Mixed burst lands before the worker starts: tenant a floods,
        # b and c each submit one.
        for tag, tenant in (
            ("a1", "a"), ("a2", "a"), ("a3", "a"),
            ("b1", "b"), ("c1", "c"), ("a4", "a"),
        ):
            assert queue.submit(self.job(tag, tenant))
        queue.start()
        assert queue.wait_idle(timeout=10.0)
        queue.stop()
        assert order == ["a1", "b1", "c1", "a2", "a3", "a4"]

    def test_bounded_queue_drops_with_terminal_status(self):
        queue = UpgradeQueue(runner=lambda job: {}, capacity=2)
        assert queue.submit(self.job("q1", "t"))
        assert queue.submit(self.job("q2", "t"))
        assert not queue.submit(self.job("q3", "t"))
        dropped = queue.status("q3")
        assert dropped["state"] == "dropped"
        assert "full" in dropped["reason"]
        assert queue.snapshot()["dropped"] == 1
        assert queue.status("id-q2")["state"] == "queued"  # by req id

    def test_failed_job_does_not_kill_the_worker(self):
        def runner(job):
            if job.trace_id == "bad":
                raise RuntimeError("boom")
            return {"gap": 0.0}

        queue = UpgradeQueue(runner=runner, capacity=8)
        queue.start()
        assert queue.submit(self.job("bad", "t"))
        assert queue.submit(self.job("good", "t"))
        assert queue.wait_idle(timeout=10.0)
        queue.stop()
        assert queue.status("bad")["state"] == "failed"
        assert "boom" in queue.status("bad")["error"]
        assert queue.status("good")["state"] == "done"
        assert queue.status("good")["gap"] == 0.0

    def test_stopped_queue_refuses_new_work(self):
        queue = UpgradeQueue(runner=lambda job: {}, capacity=8)
        queue.start()
        queue.stop()
        assert not queue.submit(self.job("late", "t"))
        assert queue.status("late")["state"] == "dropped"

    def test_settle_callback_fires_per_terminal_job(self):
        settled = threading.Event()
        queue = UpgradeQueue(
            runner=lambda job: {}, capacity=8,
            on_settle=settled.set,
        )
        queue.start()
        queue.submit(self.job("s1", "t"))
        assert settled.wait(timeout=10.0)
        queue.stop()


class TestCacheUpgradeVsLRU:
    """The background upgrade overwrites a cache entry in place; that
    write must not double-count occupancy or churn the LRU."""

    @staticmethod
    def record(tag: str, objective: float = 1.0) -> CacheRecord:
        return CacheRecord(
            fingerprint=tag * 32, function=f"f{tag}",
            status="optimal", free_values={"x": 1}, n_free=1,
            objective=objective,
        )

    @staticmethod
    def age(cache, record, mtime) -> None:
        os.utime(cache.path_for(record.fingerprint), (mtime, mtime))

    def test_upgrade_in_place_keeps_occupancy(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        a, b = self.record("a"), self.record("b")
        assert cache.put(a) == "inserted"
        assert cache.put(b) == "inserted"
        # The upgrade lands: same fingerprint, better record.
        upgraded = self.record("a", objective=0.5)
        assert cache.put(upgraded) == "replaced"
        assert len(cache) == 2  # occupancy did not grow
        assert cache.evictions == 0  # ...so nothing was pruned
        assert snapshot().get("engine.cache_evictions", 0) == 0
        assert cache.get(a.fingerprint).objective == 0.5

    def test_upgrade_does_not_reset_eviction_counters(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        a, b, c = (self.record(t) for t in "abc")
        cache.put(a)
        self.age(cache, a, 1_000_000.0)
        cache.put(b)
        self.age(cache, b, 1_000_001.0)
        cache.put(c)  # evicts a
        assert cache.evictions == 1
        assert cache.put(self.record("b", objective=0.25)) == "replaced"
        assert cache.evictions == 1  # upgrade never touches the count
        assert snapshot()["engine.cache_evictions"] == 1
        assert len(cache) == 2

    def test_entry_evicted_mid_upgrade_reinserts_cleanly(self, tmp_path):
        """The upgrade raced the LRU and lost its entry: the landing
        write is a plain insert, not an error."""
        cache = ResultCache(tmp_path, max_entries=2)
        a, b, c = (self.record(t) for t in "abc")
        cache.put(a)
        self.age(cache, a, 1_000_000.0)
        cache.put(b)
        self.age(cache, b, 1_000_001.0)
        cache.put(c)  # a's entry is gone while its upgrade still runs
        assert cache.get(a.fingerprint) is None
        landed = self.record("a", objective=0.125)
        assert cache.put(landed) == "inserted"
        assert cache.get(a.fingerprint).objective == 0.125
        assert len(cache) == 2  # the bound still holds afterwards


class TestTieredService:
    """End-to-end service wiring: fast reply, background upgrade,
    cache-served optimal on the repeat submit."""

    @pytest.fixture()
    def server(self, tmp_path):
        config = ServiceConfig(
            queue_capacity=8, max_in_flight=2,
            fast_slo_ms=5000.0,  # generous: CI boxes are slow
            cache_dir=str(tmp_path / "cache"),
        )
        handle = ServerThread(config).start()
        yield handle
        try:
            handle.drain(timeout=120.0)
        except RuntimeError:
            pass

    def test_fast_reply_then_upgrade_then_cached_optimal(self, server):
        with ServiceClient("127.0.0.1", server.port, timeout=120) as c:
            first = c.allocate(source=SOURCE, trace=True)
            assert first["ok"], first
            result = first["result"]
            assert result["tier"] in (TIER_FAST, TIER_BASELINE, "mixed")
            assert result["fast_cost"] > 0
            upgrade = result["upgrade"]
            assert upgrade["state"] == "queued"
            final = c.wait_optimal(first["trace_id"], timeout=120.0)
            record = final["result"]["upgrade"]
            assert record["state"] == "done", record
            assert record["gap"] >= 0.0
            assert record["optimal_cost"] <= result["fast_cost"] + 1e-6
            # The repeat submit replays the upgraded cache entry.
            second = c.allocate(source=SOURCE)
            assert second["ok"]
            assert second["result"]["tier"] == TIER_IP
            assert all(
                f["cache_hit"]
                for f in second["result"]["functions"]
            )

    def test_status_and_stats_expose_tier_vitals(self, server):
        with ServiceClient("127.0.0.1", server.port, timeout=60) as c:
            tiers = c.status()["result"]["tiers"]
            assert tiers["fast_enabled"]
            assert tiers["fast_slo_ms"] == 5000.0
            assert tiers["upgrades"]["capacity"] == 64
            body = c.stats()["result"]["tiers"]
            assert "fast_replies" in body and "slo_misses" in body

    def test_report_requests_still_get_exact_answers(self, server):
        with ServiceClient("127.0.0.1", server.port, timeout=120) as c:
            resp = c.allocate(source=SOURCE, report=True)
            assert resp["ok"]
            assert resp["result"]["tier"] == TIER_IP
            assert "upgrade" not in resp["result"]


class TestTieredSigtermDrain:
    def test_sigterm_waits_for_upgrades(self, tmp_path):
        """SIGTERM after a fast-answered burst: the server must finish
        every queued background upgrade before exiting 0."""
        root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--fast-slo-ms", "5000",
             "--cache", str(tmp_path / "cache")],
            cwd=root, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            assert "fast-slo=5000" in banner, banner
            port = int(
                banner.split("listening on ")[1]
                .split()[0].rsplit(":", 1)[1]
            )
            replies = []
            with ServiceClient("127.0.0.1", port, timeout=120) as c:
                for _ in range(3):
                    replies.append(c.allocate(source=SOURCE))
            # Fast answers are back; their upgrades are (at most)
            # still in the background queue when SIGTERM lands.
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "drained" in err
            for resp in replies:
                assert resp["ok"], resp
                upgrade = resp["result"].get("upgrade")
                if upgrade is not None:
                    assert upgrade["state"] in ("queued", "dropped")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
