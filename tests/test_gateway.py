"""Tests for the HTTP gateway + consistent-hash sharded tier
(repro.gateway) and the multi-tenant cache namespaces that ride on it.

The hash ring is exercised as a pure data structure; the serving
tests run real shards — in-process :class:`ServerThread` instances
for the happy paths, a ``python -m repro serve`` subprocess for the
kill-one-shard-mid-burst fail-over test (in the style of the
``test_faults.py`` SIGKILL tests).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import Counter

import pytest

from repro.__main__ import EXIT_CONNECT, main as repro_main
from repro.engine import NAMESPACE_DIR, ResultCache, namespace_dirname
from repro.engine.cache import CacheRecord
from repro.gateway import (
    ConsistentHashRing,
    GatewayClient,
    GatewayConfig,
    GatewayThread,
    routing_fingerprint,
)
from repro.obs import reset_stats, set_stats_enabled
from repro.service import ServerThread, ServiceClient, ServiceConfig

SOURCE = """
int helper(int a) { return a * 3; }
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i += 1) { s += helper(i); }
    return s;
}
"""

OTHER_SOURCE = """
int twice(int a) { return a + a; }
"""

#: cheap distinct programs for burst workloads
VARIANTS = [
    f"int f{i}(int a) {{ return a + {i}; }}" for i in range(8)
]


@pytest.fixture(autouse=True)
def stats():
    set_stats_enabled(True)
    reset_stats()
    yield
    set_stats_enabled(False)
    reset_stats()


# -- the hash ring as a data structure ------------------------------------


def test_ring_deterministic_across_insertion_order():
    a = ConsistentHashRing(["s0", "s1", "s2"])
    b = ConsistentHashRing(["s2", "s0", "s1"])
    keys = [f"key-{i}" for i in range(200)]
    assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]


def test_ring_balance_within_tolerance():
    ring = ConsistentHashRing(["s0", "s1", "s2"])
    keys = [routing_fingerprint({"source": f"fn{i}"})
            for i in range(1000)]
    load = Counter(ring.owner(k) for k in keys)
    assert set(load) == {"s0", "s1", "s2"}
    fair = 1000 / 3
    for shard, count in load.items():
        assert 0.5 * fair <= count <= 1.7 * fair, (shard, count)


def test_ring_minimal_remap_on_leave():
    ring = ConsistentHashRing(["s0", "s1", "s2"])
    keys = [f"key-{i}" for i in range(1000)]
    before = {k: ring.owner(k) for k in keys}
    ring.remove("s1")
    after = {k: ring.owner(k) for k in keys}
    for k in keys:
        if before[k] != "s1":
            # only keys owned by the leaver may move
            assert after[k] == before[k], k
        else:
            assert after[k] in ("s0", "s2")


def test_ring_minimal_remap_on_join():
    ring = ConsistentHashRing(["s0", "s1"])
    keys = [f"key-{i}" for i in range(1000)]
    before = {k: ring.owner(k) for k in keys}
    ring.add("s2")
    after = {k: ring.owner(k) for k in keys}
    moved = [k for k in keys if after[k] != before[k]]
    # every moved key moved *to* the joiner, and roughly 1/3 moved
    assert all(after[k] == "s2" for k in moved)
    assert 100 <= len(moved) <= 600


def test_ring_preference_distinct_and_owner_first():
    ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
    for i in range(50):
        key = f"key-{i}"
        pref = ring.preference(key)
        assert pref[0] == ring.owner(key)
        assert sorted(pref) == ["s0", "s1", "s2", "s3"]
    assert ring.preference("x", count=2).__len__() == 2
    assert ConsistentHashRing().preference("x") == []
    assert ConsistentHashRing().owner("x") is None


def test_routing_fingerprint_stable_and_tenant_blind():
    body = {"source": "int f(){}", "target": "x86",
            "tenant": "acme", "deadline": 5.0}
    again = {"tenant": "zeta", "target": "x86",
             "source": "int f(){}"}
    assert routing_fingerprint(body) == routing_fingerprint(again)
    assert routing_fingerprint(body) != routing_fingerprint(
        {"source": "int g(){}", "target": "x86"})


# -- multi-tenant cache namespaces ----------------------------------------


def _record(fp: str) -> CacheRecord:
    return CacheRecord(fingerprint=fp, function="f",
                       status="optimal", n_free=0)


def test_cache_namespace_isolation(tmp_path):
    root = ResultCache(tmp_path)
    acme = ResultCache(tmp_path, namespace="acme")
    zeta = ResultCache(tmp_path, namespace="zeta")
    fp = "ab" + "0" * 62
    acme.put(_record(fp))
    assert acme.get(fp) is not None
    assert zeta.get(fp) is None
    assert root.get(fp) is None
    assert acme.root == (
        tmp_path / NAMESPACE_DIR / namespace_dirname("acme"))
    # the root cache's census never sees namespaced records
    assert len(root) == 0


def test_cache_namespace_lru_and_evictions(tmp_path):
    ns = ResultCache(tmp_path, max_entries=3, namespace="acme")
    fps = [f"{i:02x}" + "1" * 62 for i in range(5)]
    for i, fp in enumerate(fps):
        ns.put(_record(fp))
        # age each record below anything written later so the LRU
        # prune always evicts the earliest puts
        stamp = time.time() - 100 + i
        os.utime(ns.path_for(fp), (stamp, stamp))
    assert len(ns) == 3
    assert ns.evictions == 2
    # oldest two gone, newest three retained
    assert ns.get(fps[0]) is None and ns.get(fps[1]) is None
    assert all(ns.get(fp) is not None for fp in fps[2:])


def test_namespace_dirname_safe_and_collision_free():
    assert namespace_dirname("acme-prod") == "acme-prod"
    hostile = namespace_dirname("../../etc")
    assert "/" not in hostile and hostile != "../../etc"
    assert namespace_dirname("a/b") != namespace_dirname("a_b")


def test_stats_verb_surfaces_namespaces(tmp_path):
    config = ServiceConfig(
        port=0, queue_capacity=8, max_in_flight=2,
        cache_dir=str(tmp_path / "cache"), shard_id="shard-x",
    )
    handle = ServerThread(config).start()
    try:
        with ServiceClient("127.0.0.1", handle.port) as client:
            client.check(client.allocate(
                source=OTHER_SOURCE, tenant="acme"))
            client.check(client.allocate(source=OTHER_SOURCE))
            stats = client.check(client.stats())["result"]
            status = client.check(client.status())["result"]
        assert status["shard_id"] == "shard-x"
        assert stats["shard_id"] == "shard-x"
        spaces = stats["cache"]["namespaces"]
        assert "acme" in spaces
        assert spaces["acme"]["entries"] >= 1
        assert "evictions" in spaces["acme"]
        # the anonymous request stayed in the shared root tree
        assert stats["cache"]["entries"] >= 1
    finally:
        handle.drain(timeout=60.0)


# -- gateway end-to-end ---------------------------------------------------


@pytest.fixture()
def fleet(tmp_path):
    """3 in-process shards behind an in-process gateway."""
    shards = []
    for i in range(3):
        config = ServiceConfig(
            port=0, queue_capacity=16, max_in_flight=2,
            cache_dir=str(tmp_path / f"shard-{i}"),
            shard_id=f"shard-{i}",
        )
        shards.append(ServerThread(config).start())
    gwt = GatewayThread(GatewayConfig(port=0, probe_interval=0.2,
                                      breaker_reset=0.5))
    for i, shard in enumerate(shards):
        gwt.gateway.register_shard(
            f"shard-{i}", "127.0.0.1", shard.port)
    gwt.start()
    yield gwt, shards
    gwt.stop()
    for shard in shards:
        try:
            shard.drain(timeout=60.0)
        except RuntimeError:
            pass


def gw_client(gwt: GatewayThread, **kw) -> GatewayClient:
    return GatewayClient(f"http://127.0.0.1:{gwt.port}", **kw)


def test_gateway_affinity_and_cache_hits(fleet):
    """Acceptance: repeated-function traffic lands on one warm shard
    and replays from its cache (hit rate > 0 on repeats)."""
    gwt, _ = fleet
    with gw_client(gwt) as client:
        first = {}
        for i, src in enumerate(VARIANTS[:4]):
            resp = client.allocate(source=src, tenant=f"t{i % 2}")
            assert resp["ok"], resp
            assert not any(f.get("cache_hit")
                           for f in resp["result"]["functions"])
            first[src] = resp["gateway"]["shard"]
        # ≥2 distinct shards should own a 4-program workload
        assert len(set(first.values())) >= 2
        hits = 0
        for i, src in enumerate(VARIANTS[:4]):
            resp = client.allocate(source=src, tenant=f"t{i % 2}")
            assert resp["ok"], resp
            assert resp["gateway"]["shard"] == first[src]
            hits += sum(bool(f.get("cache_hit"))
                        for f in resp["result"]["functions"])
        assert hits > 0
        # and the routing metrics recorded the traffic
        text = client.metrics()
        assert "repro_gateway_route" in text
        assert "repro_gateway_shard_latency" in text
        assert 'repro_gateway_shard_state{shard="shard-0"}' in text


def test_gateway_status_shards_healthz(fleet):
    gwt, _ = fleet
    with gw_client(gwt) as client:
        hz = client.healthz()
        assert hz["ok"] and hz["shards_up"]
        status = client.status()["result"]
        assert status["shards_up"] == 3
        assert status["ring"]["nodes"] == [
            "shard-0", "shard-1", "shard-2"]
        snaps = client.shards()["result"]["shards"]
        assert [s["state"] for s in snaps] == ["up"] * 3
        assert all(s["breaker"]["state"] == "closed" for s in snaps)


def test_gateway_admin_remove_and_rejoin(fleet):
    gwt, _ = fleet
    with gw_client(gwt) as client:
        removed = client.remove_shard("shard-1")
        assert removed["ok"]
        assert removed["result"]["ring"] == ["shard-0", "shard-2"]
        # traffic still flows, remapped to the remaining shards
        resp = client.allocate(source=OTHER_SOURCE)
        assert resp["ok"]
        assert resp["gateway"]["shard"] in ("shard-0", "shard-2")
        # a left shard 404s on double-remove
        again = client.remove_shard("shard-ghost")
        assert not again["ok"]
        # re-join through POST /v1/shards
        shard1 = gwt.gateway.manager.get("shard-1")
        back = client.add_shard("shard-1", "127.0.0.1", shard1.port)
        assert back["ok"]
        assert "shard-1" in back["result"]["ring"]


def test_gateway_upgrade_ring_affinity(tmp_path):
    """GET /v1/upgrade reuses the allocate's ring walk: a known ref
    goes straight to the owning shard; only unknown refs fan out."""
    shards = []
    for i in range(3):
        config = ServiceConfig(
            port=0, queue_capacity=16, max_in_flight=2,
            cache_dir=str(tmp_path / f"shard-{i}"),
            shard_id=f"shard-{i}", fast_slo_ms=200.0,
        )
        shards.append(ServerThread(config).start())
    gwt = GatewayThread(GatewayConfig(port=0, probe_interval=0.2))
    for i, shard in enumerate(shards):
        gwt.gateway.register_shard(
            f"shard-{i}", "127.0.0.1", shard.port)
    gwt.start()
    try:
        with gw_client(gwt) as client:
            resp = client.allocate(
                source=OTHER_SOURCE, trace_id="up-affinity-1"
            )
            assert resp["ok"], resp
            owner = resp["gateway"]["shard"]
            assert resp["result"].get("upgrade"), (
                "fast tier did not queue a background upgrade"
            )
            # known ref: served by the owning shard, no fan-out
            up = client.upgrade("up-affinity-1")
            assert up["ok"], up
            assert up["result"]["shard"] == owner
            assert up["result"]["affinity"] is True
            # unknown ref: falls back to the full fan-out and misses
            missing = client.upgrade("no-such-request")
            assert not missing["ok"]
            assert missing["result"]["affinity"] is False
            # a wiped key store (gateway restart) still finds the
            # record — by asking every shard instead of one
            gwt.gateway._upgrade_keys.clear()
            again = client.upgrade("up-affinity-1")
            assert again["ok"], again
            assert again["result"]["shard"] == owner
            assert again["result"]["affinity"] is False
            text = client.metrics()
            assert "repro_gateway_upgrade_affinity_total 1" in text
            assert "repro_gateway_upgrade_fanout_total 2" in text
    finally:
        gwt.stop()
        for shard in shards:
            try:
                shard.drain(timeout=60.0)
            except RuntimeError:
                pass


def test_gateway_trace_stitches_shard_tree(fleet):
    """Satellite: one end-to-end span tree across the gateway hop."""
    gwt, _ = fleet
    with gw_client(gwt) as client:
        resp = client.allocate(source=OTHER_SOURCE, trace=True)
        assert resp["ok"]
        trace_id = resp["trace_id"]
        tree = client.trace(trace_id)["result"]["trace"]
    assert tree["meta"]["trace_id"] == trace_id
    stages = [c["name"] for c in tree["children"]]
    assert stages == ["admission", "route", "proxy", "reply"]
    proxy = tree["children"][stages.index("proxy")]
    # the shard's own lifecycle tree hangs under the proxy span
    shard_roots = [c["name"] for c in proxy.get("children", [])]
    assert "request" in shard_roots
    shard_tree = proxy["children"][shard_roots.index("request")]
    shard_stages = {c["name"] for c in shard_tree["children"]}
    assert "solve" in shard_stages or "reply" in shard_stages


def test_gateway_no_shards_is_503(tmp_path):
    gwt = GatewayThread(GatewayConfig(port=0)).start()
    try:
        with gw_client(gwt) as client:
            hz = client.healthz()
            assert not hz["ok"]
            resp = client.allocate(source=OTHER_SOURCE)
            assert not resp["ok"]
            assert resp["error"]["code"] == "unavailable"
            assert resp["gateway"]["shard"] is None
            assert resp["gateway"]["retry_after"] >= 1
    finally:
        gwt.stop()


def test_gateway_breaker_down_and_half_open_revival(tmp_path):
    """A shard that stops answering probes goes down (off the ring);
    once it answers again the breaker's half-open probe revives it."""
    flaky = _FakeShard()
    flaky.start()
    gwt = GatewayThread(GatewayConfig(
        port=0, probe_interval=0.1, probe_timeout=1.0,
        breaker_threshold=2, breaker_reset=0.3,
    ))
    gwt.gateway.manager.add("flaky", "127.0.0.1", flaky.port)
    gwt.start()
    try:
        manager = gwt.gateway.manager
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            shard = manager.get("flaky")
            if shard.state == "up" and shard.last_ok:
                break
            time.sleep(0.05)
        assert manager.get("flaky").state == "up"

        flaky.go_dark()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if manager.get("flaky").state == "down":
                break
            time.sleep(0.05)
        assert manager.get("flaky").state == "down"
        assert "flaky" not in manager.ring.nodes()

        flaky.relight()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if manager.get("flaky").state == "up":
                break
            time.sleep(0.05)
        assert manager.get("flaky").state == "up"
        assert "flaky" in manager.ring.nodes()
    finally:
        gwt.stop()
        flaky.stop()


class _FakeShard:
    """A minimal NDJSON shard: answers health/status, can go dark."""

    def __init__(self) -> None:
        self._listener = socket.socket()
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._dark = threading.Event()
        self._stopped = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, daemon=True)

    def start(self) -> None:
        self._listener.listen(8)
        self._thread.start()

    def go_dark(self) -> None:
        self._dark.set()

    def relight(self) -> None:
        self._dark.clear()

    def stop(self) -> None:
        self._stopped.set()
        self._listener.close()
        self._thread.join(timeout=2.0)

    def _serve(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            with conn:
                if self._dark.is_set():
                    continue  # slam the door: connection, no reply
                try:
                    handle = conn.makefile("rwb")
                    line = handle.readline()
                    if not line:
                        continue
                    message = json.loads(line)
                    reply = {
                        "id": message.get("id"), "trace_id": "",
                        "verb": message.get("verb"), "ok": True,
                        "result": {"state": "serving",
                                   "shard_id": "flaky"},
                    }
                    handle.write(json.dumps(reply).encode() + b"\n")
                    handle.flush()
                except (OSError, ValueError):
                    continue


# -- kill-one-shard-mid-burst fail-over (subprocess victim) ---------------


def _spawn_serve(tmp_path, shard_id: str):
    """A real `repro serve` subprocess; returns (process, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--shard-id", shard_id, "--time-limit", "8",
         "--cache", str(tmp_path / shard_id)],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if "listening on" in line:
            addr = line.split("listening on ", 1)[1].split()[0]
            return process, int(addr.rsplit(":", 1)[1])
        if process.poll() is not None:
            raise RuntimeError(f"{shard_id} died during startup")
    process.kill()
    raise RuntimeError(f"{shard_id} never printed its banner")


def test_gateway_failover_on_shard_sigkill(tmp_path):
    """Acceptance: killing one shard mid-burst loses zero accepted
    requests — survivors absorb the victim's keyspace."""
    victim_proc, victim_port = _spawn_serve(tmp_path, "victim")
    survivors = []
    for i in range(2):
        config = ServiceConfig(
            port=0, queue_capacity=32, max_in_flight=2,
            cache_dir=str(tmp_path / f"live-{i}"),
            shard_id=f"live-{i}",
        )
        survivors.append(ServerThread(config).start())
    gwt = GatewayThread(GatewayConfig(
        port=0, probe_interval=0.2,
        breaker_threshold=1, breaker_reset=30.0,
    ))
    gwt.gateway.manager.add("victim", "127.0.0.1", victim_port)
    for i, shard in enumerate(survivors):
        gwt.gateway.manager.add(
            f"live-{i}", "127.0.0.1", shard.port)
    gwt.start()

    results: dict[int, dict] = {}
    errors: list[Exception] = []

    def submit(idx: int) -> None:
        try:
            with gw_client(gwt, timeout=120.0) as client:
                results[idx] = client.allocate(
                    source=VARIANTS[idx % len(VARIANTS)],
                    tenant=f"tenant-{idx % 3}",
                )
        except Exception as exc:  # pragma: no cover - fail loudly
            errors.append(exc)

    try:
        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(12)]
        for i, thread in enumerate(threads):
            thread.start()
            if i == 4:
                os.kill(victim_proc.pid, signal.SIGKILL)
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors, errors
        assert len(results) == 12
        # zero dropped accepted requests: every submit got a verdict,
        # and every verdict is a success (fail-over retried the
        # victim's keys on ring successors)
        for idx, resp in results.items():
            assert resp["ok"], (idx, resp)
            assert resp["gateway"]["shard"] is not None
        routed = {r["gateway"]["shard"] for r in results.values()}
        assert routed <= {"victim", "live-0", "live-1"}
        assert routed & {"live-0", "live-1"}
    finally:
        gwt.stop()
        victim_proc.poll() or victim_proc.kill()
        victim_proc.wait(timeout=10)
        for shard in survivors:
            try:
                shard.drain(timeout=60.0)
            except RuntimeError:
                pass


# -- submit CLI: clean connection errors + gateway transport --------------


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def test_submit_connection_refused_exit_code(tmp_path, capsys):
    program = tmp_path / "p.c"
    program.write_text(OTHER_SOURCE)
    code = repro_main([
        "submit", str(program), "--port", str(_free_port()),
    ])
    assert code == EXIT_CONNECT
    err = capsys.readouterr().err
    assert "cannot connect" in err
    assert "Traceback" not in err


def test_submit_midstream_disconnect_exit_code(tmp_path, capsys):
    """A server that accepts and hangs up mid-request must surface as
    the clean connection exit code, not a traceback."""
    listener = socket.socket()
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def hang_up():
        conn, _ = listener.accept()
        conn.recv(64)
        conn.close()

    thread = threading.Thread(target=hang_up, daemon=True)
    thread.start()
    program = tmp_path / "p.c"
    program.write_text(OTHER_SOURCE)
    try:
        code = repro_main([
            "submit", str(program), "--port", str(port),
        ])
    finally:
        listener.close()
    assert code == EXIT_CONNECT
    err = capsys.readouterr().err
    assert "lost connection" in err
    assert "Traceback" not in err


def test_submit_gateway_transport(fleet, tmp_path, capsys):
    gwt, _ = fleet
    program = tmp_path / "p.c"
    program.write_text(OTHER_SOURCE)
    url = f"http://127.0.0.1:{gwt.port}"
    assert repro_main([
        "submit", str(program), "--gateway", url,
        "--tenant", "acme", "--json",
    ]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert payload["ok"]
    assert payload["gateway"]["shard"].startswith("shard-")
    # the shards verb works over the gateway (and only there)
    assert repro_main([
        "submit", "--verb", "shards", "--gateway", url, "--json",
    ]) == 0
    assert repro_main(["submit", "--verb", "shards"]) == 2


def test_submit_gateway_unreachable_exit_code(tmp_path, capsys):
    program = tmp_path / "p.c"
    program.write_text(OTHER_SOURCE)
    code = repro_main([
        "submit", str(program),
        "--gateway", f"http://127.0.0.1:{_free_port()}",
    ])
    assert code == EXIT_CONNECT
    err = capsys.readouterr().err
    assert "cannot reach gateway" in err
    assert "Traceback" not in err
