"""Interpreter tests: semantics, profiling, accounting, allocated mode."""

import pytest

from repro.ir import (
    Cond,
    I8,
    I16,
    I32,
    Address,
    IRBuilder,
    Module,
    Opcode,
    SlotKind,
)
from repro.sim import (
    AllocatedFunction,
    Interpreter,
    RunResult,
    SimulationError,
)
from repro.target import x86_target


def run_single(builder: IRBuilder, args=None, **kwargs) -> RunResult:
    m = Module("t")
    m.add_function(builder.done())
    return Interpreter(m, **kwargs).run(builder.function.name, args or [])


class TestArithmetic:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 3, 4, 7),
        ("sub", 3, 4, -1),
        ("mul", -3, 4, -12),
        ("and_", 12, 10, 8),
        ("or_", 12, 10, 14),
        ("xor", 12, 10, 6),
    ])
    def test_binary(self, op, a, b, expected):
        b_ = IRBuilder("f")
        b_.block("entry")
        x = b_.li(a)
        r = getattr(b_, op)(x, b_.imm(b))
        b_.ret(r)
        assert run_single(b_).return_value == expected

    @pytest.mark.parametrize("a,b,q,r", [
        (7, 2, 3, 1),
        (-7, 2, -3, -1),  # x86 IDIV truncates toward zero
        (7, -2, -3, 1),
        (-7, -2, 3, -1),
    ])
    def test_division_truncates_toward_zero(self, a, b, q, r):
        bb = IRBuilder("f")
        bb.block("entry")
        x = bb.li(a)
        y = bb.li(b)
        bb.ret(bb.div(x, y))
        assert run_single(bb).return_value == q
        bb = IRBuilder("g")
        bb.block("entry")
        x = bb.li(a)
        y = bb.li(b)
        bb.ret(bb.mod(x, y))
        assert run_single(bb).return_value == r

    def test_division_by_zero_faults(self):
        bb = IRBuilder("f")
        bb.block("entry")
        x = bb.li(1)
        y = bb.li(0)
        bb.ret(bb.div(x, y))
        with pytest.raises(SimulationError, match="zero"):
            run_single(bb)

    def test_shifts(self):
        bb = IRBuilder("f")
        bb.block("entry")
        x = bb.li(-8)
        sar = bb.sar(x, bb.imm(1))
        shr = bb.shr(x, bb.imm(1))
        bb.ret(bb.sub(sar, shr))
        # sar(-8,1) = -4 ; shr(-8,1) = 0x7FFFFFFC
        assert run_single(bb).return_value == -4 - 0x7FFFFFFC

    def test_shift_count_masked_to_31(self):
        bb = IRBuilder("f")
        bb.block("entry")
        x = bb.li(1)
        bb.ret(bb.shl(x, bb.imm(33)))  # 33 & 31 == 1
        assert run_single(bb).return_value == 2

    def test_narrow_wraparound(self):
        bb = IRBuilder("f")
        bb.block("entry")
        c = bb.li(127, I8)
        c2 = bb.add(c, bb.imm(1, I8))
        bb.ret(bb.sext(c2, I32))
        assert run_single(bb).return_value == -128

    def test_zext_vs_sext(self):
        bb = IRBuilder("f")
        bb.block("entry")
        c = bb.li(-1, I8)
        z = bb.zext(c, I32)
        s = bb.sext(c, I32)
        bb.ret(bb.sub(z, s))
        assert run_single(bb).return_value == 255 - (-1)


class TestMemoryAndCalls:
    def test_array_addressing(self):
        bb = IRBuilder("f")
        arr = bb.slot("a", I32, SlotKind.ARRAY, count=4)
        bb.block("entry")
        i = bb.li(2, hint="i")
        bb.store(Address(slot=arr, index=i, scale=4), bb.imm(99))
        v = bb.load(Address(slot=arr, disp=8), I32)
        bb.ret(v)
        assert run_single(bb).return_value == 99

    def test_recursion(self):
        m = Module("t")
        b = IRBuilder("fact")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        b.cjump(Cond.LE, n, b.imm(1), "base", "rec")
        b.block("base")
        b.ret(b.imm(1))
        b.block("rec")
        r = b.call("fact", [b.sub(n, b.imm(1))])
        b.ret(b.mul(n, r))
        m.add_function(b.done())
        assert Interpreter(m).run("fact", [6]).return_value == 720

    def test_recursion_frames_are_independent(self):
        # Each activation's local slot must be distinct.
        m = Module("t")
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        local = b.slot("keep", I32)
        b.block("entry")
        n = b.load(pn)
        b.store(local, n)
        b.cjump(Cond.LE, n, b.imm(0), "base", "rec")
        b.block("base")
        b.ret(b.imm(0))
        b.block("rec")
        sub = b.call("f", [b.sub(n, b.imm(1))])
        kept = b.load(local)
        b.ret(b.add(kept, sub))
        m.add_function(b.done())
        # sum 1..5
        assert Interpreter(m).run("f", [5]).return_value == 15

    def test_call_depth_limit(self):
        m = Module("t")
        b = IRBuilder("inf")
        b.block("entry")
        r = b.call("inf", [])
        b.ret(r)
        m.add_function(b.done())
        with pytest.raises(SimulationError, match="depth"):
            Interpreter(m).run("inf", [])

    def test_globals_shared_across_calls(self):
        from repro.ir import MemorySlot

        m = Module("t")
        g = m.add_global(MemorySlot("g", I32, SlotKind.GLOBAL))
        b = IRBuilder("writer")
        b.function.add_slot(g)
        b.block("entry")
        b.store(g, b.imm(42))
        b.ret(b.imm(0))
        m.add_function(b.done())
        b = IRBuilder("main")
        b.function.add_slot(g)
        b.block("entry")
        b.call("writer", [])
        b.ret(b.load(g))
        m.add_function(b.done())
        assert Interpreter(m).run("main", []).return_value == 42


class TestAccounting:
    def test_block_counts(self, loop_sum_module):
        run = Interpreter(loop_sum_module).run("sum", [3])
        counts = run.blocks_of("sum")
        assert counts["entry"] == 1
        assert counts["head"] == 5
        assert counts["body"] == 4
        assert run.blocks_of("double")["entry"] == 1

    def test_opcode_counts(self, loop_sum_module):
        run = Interpreter(loop_sum_module).run("sum", [3])
        assert run.opcode_counts[Opcode.CALL] == 1
        assert run.opcode_counts[Opcode.COPY] == 8  # 2 per iteration

    def test_cycles_positive_and_monotone(self, loop_sum_module):
        small = Interpreter(loop_sum_module).run("sum", [2]).cycles
        large = Interpreter(loop_sum_module).run("sum", [20]).cycles
        assert 0 < small < large


class TestAllocatedMode:
    def test_scrambling_catches_clobber_bugs(self, x86):
        # A value held across a call must live in a callee-saved
        # register; putting it in caller-saved ECX must corrupt it.
        m = Module("t")
        b = IRBuilder("id")
        pa = b.slot("a", kind=SlotKind.PARAM)
        b.block("entry")
        b.ret(b.load(pa))
        m.add_function(b.done())

        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        keep = b.add(n, b.imm(1), hint="keep")
        r = b.call("id", [n])
        b.ret(b.add(r, keep))  # keep is live across the call
        fn = b.done()
        m.add_function(fn)

        rf = x86.register_file
        ref = Interpreter(m).run("f", [10]).return_value
        assert ref == 21

        def assign(keep_reg):
            # n -> ESI; keep -> keep_reg; call result r -> EAX;
            # intermediate names per rewrite are avoided by mapping the
            # symbolic function directly.
            return {
                "t": rf["ESI"],
                "keep": rf[keep_reg],
                "ret": rf["EAX"],
                "t.1": rf["EAX"],
            }

        good = Interpreter(
            m, target=x86,
            allocations={"f": AllocatedFunction(fn, assign("EBX"))},
        ).run("f", [10]).return_value
        assert good == ref

        bad = Interpreter(
            m, target=x86,
            allocations={"f": AllocatedFunction(fn, assign("ECX"))},
        ).run("f", [10]).return_value
        assert bad != ref  # ECX was scrambled by the call

    def test_missing_assignment_faults(self, x86, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        interp = Interpreter(
            loop_sum_module, target=x86,
            allocations={"sum": AllocatedFunction(fn, {})},
        )
        with pytest.raises(SimulationError, match="no register"):
            interp.run("sum", [3])
