"""Tests for the seeded program generator."""

import pytest

from repro.bench.generator import (
    GeneratorConfig,
    ProgramGenerator,
    SCALING_SIZES,
    generate_module,
    scaling_functions,
)
from repro.ir import format_function, verify_function
from repro.sim import Interpreter


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = ProgramGenerator(42).program_source()
        b = ProgramGenerator(42).program_source()
        assert a == b

    def test_different_seeds_differ(self):
        a = ProgramGenerator(1).program_source()
        b = ProgramGenerator(2).program_source()
        assert a != b

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_verifies_and_terminates(self, seed):
        module = generate_module(
            seed, GeneratorConfig(n_functions=2, body_statements=(2, 6))
        )
        for fn in module:
            verify_function(fn)
        run = Interpreter(module).run("main", [3])
        assert run.return_value is not None
        assert run.steps < 5_000_000

    def test_repeat_runs_identical(self):
        module = generate_module(
            9, GeneratorConfig(n_functions=2, body_statements=(2, 5))
        )
        a = Interpreter(module).run("main", [5]).return_value
        b = Interpreter(module).run("main", [5]).return_value
        assert a == b

    def test_function_count_respected(self):
        module = generate_module(3, GeneratorConfig(n_functions=5))
        # n functions + main driver
        assert len(module.functions) == 6

    def test_scaling_spans_sizes(self):
        sizes = [
            fn.n_instructions
            for _, fn in scaling_functions(seeds=range(2))
        ]
        assert max(sizes) > 4 * min(sizes)
        assert max(sizes) < 1000  # stays solver-friendly

    def test_scaling_sizes_constant(self):
        assert SCALING_SIZES == sorted(SCALING_SIZES)

    def test_no_division_faults(self):
        # Generated divisions always use (x & 7) + 1 divisors.
        for seed in range(10):
            module = generate_module(
                seed + 300,
                GeneratorConfig(n_functions=1, body_statements=(3, 6)),
            )
            Interpreter(module).run("main", [7])  # must not raise
