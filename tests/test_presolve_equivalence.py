"""Presolve equivalence: reduced solves match direct solves exactly.

Two sources of models, three backends each:

* the Figure 9/10 generator set — real allocation IPs built by the
  allocator over generated functions spanning a size range;
* a randomized raw-IPModel generator biased toward presolve-relevant
  structure (duplicate columns, dominated rows, forced variables,
  independent blocks).

For every model, solving with presolve must give the same status and
objective as solving without, and the expanded assignment must satisfy
the original model (``IPModel.check``).
"""

import random

import pytest

from repro.bench import scaling_functions
from repro.core import IPAllocator
from repro.solver import (
    MAX_BRUTE_VARS,
    IPModel,
    Sense,
    solve,
)
from repro.target import x86_target

BACKENDS = ("scipy", "branch-bound", "brute-force")


def check_equivalence(model, backend):
    on = solve(model, backend=backend, presolve=True)
    off = solve(model, backend=backend, presolve=False)
    assert on.status == off.status, (
        f"{model.name}/{backend}: presolve changed status "
        f"{off.status} -> {on.status}"
    )
    if not off.status.has_solution:
        return
    assert on.objective == pytest.approx(off.objective, abs=1e-6), (
        f"{model.name}/{backend}: presolve changed objective "
        f"{off.objective} -> {on.objective}"
    )
    assert model.check(on.values), (
        f"{model.name}/{backend}: presolved assignment violates the "
        f"original model"
    )
    assert model.evaluate(on.values) == pytest.approx(
        on.objective, abs=1e-6
    )


def random_model(seed):
    rng = random.Random(seed)
    m = IPModel(f"rand{seed}")
    n = rng.randint(2, 10)
    xs = [
        m.add_var(f"x{i}", float(rng.randint(-5, 5)))
        for i in range(n)
    ]
    # duplicate-column structure half the time: a twin shadows one
    # variable in every constraint it appears in
    src = twin = None
    if rng.random() < 0.5:
        src = rng.choice(xs)
        twin = m.add_var("twin", float(rng.randint(-5, 5)))
    senses = [Sense.LE, Sense.GE, Sense.EQ]
    for c in range(rng.randint(1, 8)):
        k = rng.randint(1, min(4, n))
        vars_ = rng.sample(xs, k)
        terms = [
            (float(rng.choice([-2, -1, 1, 1, 1, 2])), v)
            for v in vars_
        ]
        terms += [
            (coef, twin) for coef, v in terms if v is src
        ]
        sense = rng.choice(senses)
        # rhs near the activity range so constraints bind without
        # making most models trivially infeasible
        rhs = float(rng.randint(-1, k))
        m.add_constraint(terms, sense, rhs, name=f"c{c}")
    return m


@pytest.mark.parametrize("backend", BACKENDS)
def test_random_models_equivalent(backend):
    for seed in range(60):
        model = random_model(seed)
        if model.n_vars > MAX_BRUTE_VARS and backend == "brute-force":
            continue
        check_equivalence(model, backend)


#: (backend, seeds, sizes): real allocation IPs are far beyond
#: MAX_BRUTE_VARS, so the brute-force oracle is exercised on the
#: randomized models above; the from-scratch branch-and-bound gets a
#: smaller slice of the sweep to keep suite runtime reasonable.
FIG_SWEEPS = [
    ("scipy", range(2), [1, 3]),
    ("branch-bound", range(1), [1]),
]


@pytest.mark.parametrize(
    "backend,seeds,sizes", FIG_SWEEPS, ids=[s[0] for s in FIG_SWEEPS]
)
def test_fig_models_equivalent(backend, seeds, sizes):
    allocator = IPAllocator(x86_target())
    checked = 0
    for _, fn in scaling_functions(seeds=seeds, sizes=sizes):
        _, model, _, _ = allocator.build_model(fn)
        check_equivalence(model, backend)
        checked += 1
    assert checked, "no allocation models reached the solver"


def test_fig_models_equivalent_larger_scipy():
    """One bigger sweep on the production backend only (the others
    would dominate suite runtime)."""
    allocator = IPAllocator(x86_target())
    reduced_something = False
    for _, fn in scaling_functions(seeds=range(1), sizes=[5, 8]):
        _, model, _, _ = allocator.build_model(fn)
        check_equivalence(model, "scipy")
        summary = solve(model, presolve=True).presolve
        if summary.cons_dropped or summary.vars_fixed:
            reduced_something = True
    assert reduced_something, (
        "presolve reduced nothing across the fig set"
    )
