"""Tests for the structural allocation validator — it must catch every
class of machine-constraint violation."""

import pytest

from repro.allocation import Allocation, AllocationError, validate_allocation
from repro.ir import (
    I8,
    I32,
    Address,
    IRBuilder,
    Instr,
    Module,
    Opcode,
    SlotKind,
    clone_function,
)
from repro.target import x86_target


def straightline_fn():
    b = IRBuilder("f")
    pn = b.slot("n", kind=SlotKind.PARAM)
    b.block("entry")
    n = b.load(pn)
    a = b.add(n, b.imm(1), hint="a")
    b.ret(a)
    return b.done()


def make_alloc(fn, assignment, x86):
    return Allocation(
        fn_name=fn.name,
        function=fn,
        assignment={
            name: x86.register_file[reg]
            for name, reg in assignment.items()
        },
        allocator="test",
        status="feasible",
    )


class TestValidator:
    def setup_method(self):
        self.x86 = x86_target()

    def test_valid_passes(self):
        fn = straightline_fn()
        # add: a tied to n? dst a, srcs (n, imm): tie requires same reg.
        alloc = make_alloc(fn, {"t": "EAX", "a": "EAX"}, self.x86)
        validate_allocation(alloc, self.x86)

    def test_missing_assignment(self):
        fn = straightline_fn()
        alloc = make_alloc(fn, {"t": "EAX"}, self.x86)
        with pytest.raises(AllocationError, match="no register"):
            validate_allocation(alloc, self.x86)

    def test_width_mismatch(self):
        fn = straightline_fn()
        alloc = make_alloc(fn, {"t": "AX", "a": "AX"}, self.x86)
        with pytest.raises(AllocationError, match="inadmissible"):
            validate_allocation(alloc, self.x86)

    def test_two_address_violation(self):
        fn = straightline_fn()
        alloc = make_alloc(fn, {"t": "EAX", "a": "EBX"}, self.x86)
        with pytest.raises(AllocationError, match="combined"):
            validate_allocation(alloc, self.x86)

    def test_overlap_violation(self):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        c = b.trunc(n, I8)
        w = b.add(n, b.imm(1))
        s = b.sext(c, I32)
        b.ret(b.add(w, s))
        fn = b.done()
        # c (i8) in AL while w (i32) lives in EAX: overlap violation.
        alloc = make_alloc(fn, {
            "t": "EBX", "t.1": "AL", "t.2": "EAX",
            "t.3": "ECX", "t.4": "EAX",
        }, self.x86)
        with pytest.raises(AllocationError, match="overlap"):
            validate_allocation(alloc, self.x86)

    def test_clobber_survival(self):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        r = b.call("g", [])
        b.ret(b.add(r, n))
        fn = b.done()
        # n kept in caller-saved ECX across the call.
        alloc = make_alloc(fn, {
            "t": "ECX", "ret": "EAX", "t.1": "EAX",
        }, self.x86)
        with pytest.raises(AllocationError, match="clobbered"):
            validate_allocation(alloc, self.x86)

    def test_call_result_family(self):
        b = IRBuilder("f")
        b.block("entry")
        r = b.call("g", [])
        b.ret(r)
        fn = b.done()
        alloc = make_alloc(fn, {"ret": "EBX"}, self.x86)
        with pytest.raises(AllocationError, match="family"):
            validate_allocation(alloc, self.x86)

    def test_shift_count_family(self):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        pc = b.slot("c", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        c = b.load(pc)
        d = b.shl(n, c)
        b.ret(d)
        fn = b.done()
        alloc = make_alloc(fn, {
            "t": "EAX", "t.1": "EBX", "t.2": "EAX",
        }, self.x86)
        with pytest.raises(AllocationError, match="family"):
            validate_allocation(alloc, self.x86)

    def test_scaled_index_exclusion(self):
        # Construct with a fake target where ESP is allocatable to show
        # §5.4.3 is enforced by the validator.
        from repro.target import TargetMachine, X86_ENCODING
        from repro.target import x86_register_file

        target = TargetMachine(
            name="x86+esp",
            register_file=x86_register_file(),
            allocatable_families=("A", "B", "SP"),
            encoding=X86_ENCODING,
            caller_saved_families=frozenset({"A"}),
            irregular=True,
            mem_operands=True,
            width_aware=True,
        )
        b = IRBuilder("f")
        arr = b.slot("a", I32, SlotKind.ARRAY, count=4)
        pi = b.slot("i", kind=SlotKind.PARAM)
        b.block("entry")
        i = b.load(pi)
        v = b.load(Address(slot=arr, index=i, scale=4), I32)
        b.ret(v)
        fn = b.done()
        alloc = Allocation(
            fn_name="f", function=fn,
            assignment={
                "t": target.register_file["ESP"],
                "t.1": target.register_file["EAX"],
            },
            allocator="test", status="feasible",
        )
        with pytest.raises(AllocationError, match="scaled index"):
            validate_allocation(alloc, target)

    def test_one_memory_operand_max(self):
        from repro.ir import MemorySlot, plain

        b = IRBuilder("f")
        b.block("entry")
        s1 = b.slot("s1", I32, SlotKind.SPILL)
        s2 = b.slot("s2", I32, SlotKind.SPILL)
        d = b.vreg("d")
        b.emit(Instr(Opcode.ADD, dst=d, srcs=(plain(s1), plain(s2))))
        b.ret(d)
        fn = b.done()
        alloc = make_alloc(fn, {"d": "EAX"}, self.x86)
        with pytest.raises(AllocationError, match="memory operand"):
            validate_allocation(alloc, self.x86)
