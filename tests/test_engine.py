"""Tests for the allocation engine: process-pool solves, persistent
result cache, deadline fallback (repro.engine)."""

import pytest

from repro.core import AllocatorConfig
from repro.engine import (
    AllocationEngine,
    CacheRecord,
    EngineConfig,
    ResultCache,
    allocation_fingerprint,
    config_signature,
    fingerprint_function,
    frequency_signature,
)
from repro.analysis import static_frequencies
from repro.ir import (
    clone_function,
    format_function,
    function_fingerprint,
    parse_function,
)
from repro.lowering import lower_for_target
from repro.obs import reset_stats, set_stats_enabled, snapshot
from repro.solver import (
    IPModel,
    Sense,
    SolveStatus,
    solve_brute_force,
)

from tests.conftest import build_loop_sum


@pytest.fixture(autouse=True)
def stats():
    set_stats_enabled(True)
    reset_stats()
    yield
    set_stats_enabled(False)
    reset_stats()


@pytest.fixture()
def module():
    return build_loop_sum()


def fast_config() -> AllocatorConfig:
    return AllocatorConfig(time_limit=60.0)


class TestFingerprint:
    def test_function_fingerprint_round_trips(self, module):
        fn = module.functions["sum"]
        text = format_function(fn)
        reparsed = parse_function(text)
        assert format_function(reparsed) == text
        assert function_fingerprint(reparsed) == function_fingerprint(fn)

    def test_clone_preserves_fingerprint(self, module):
        fn = module.functions["sum"]
        assert function_fingerprint(clone_function(fn)) == \
            function_fingerprint(fn)

    def test_config_signature_excludes_non_semantic(self, x86):
        base = config_signature(AllocatorConfig())
        assert config_signature(
            AllocatorConfig(validate=False, collect_report=True)
        ) == base
        # Caller identity never splits the cache key.
        assert config_signature(
            AllocatorConfig(trace_id="req-000042-ff")
        ) == base
        assert config_signature(
            AllocatorConfig(code_size_weight=1.0)
        ) != base

    def test_fingerprint_sensitivity(self, x86, module):
        fn = module.functions["sum"]
        config = fast_config()
        fp, _ = fingerprint_function(fn, x86, config, None)
        fp2, _ = fingerprint_function(fn, x86, config, None)
        assert fp == fp2
        other, _ = fingerprint_function(
            fn, x86, AllocatorConfig(code_size_weight=7.0), None
        )
        assert other != fp
        work = clone_function(fn)
        lower_for_target(work, x86)
        freq = static_frequencies(work)
        freq.counts[next(iter(freq.counts))] += 100.0
        bumped, _ = fingerprint_function(fn, x86, config, freq)
        assert bumped != fp

    def test_frequency_signature_orders_blocks(self, x86, module):
        fn = module.functions["sum"]
        work = clone_function(fn)
        lower_for_target(work, x86)
        freq = static_frequencies(work)
        sig = frequency_signature(freq)
        assert sig == frequency_signature(freq)
        blocks = [b for b, _ in sig["counts"]]
        assert blocks == sorted(blocks)
        assert frequency_signature(None) == {
            "source": "none", "counts": [],
        }


class TestBruteForceTimeLimit:
    def build(self, n=12):
        model = IPModel("t")
        vars_ = [model.add_var(f"x{i}", cost=float(i + 1))
                 for i in range(n)]
        model.add_constraint(
            [(1.0, v) for v in vars_], Sense.GE, 2.0, "pick-two"
        )
        return model, vars_

    def test_completes_without_limit(self):
        model, _ = self.build()
        result = solve_brute_force(model)
        assert result.status is SolveStatus.OPTIMAL
        assert not result.timed_out
        assert result.objective == pytest.approx(3.0)  # x0 + x1

    def test_generous_limit_is_optimal(self):
        model, _ = self.build()
        result = solve_brute_force(model, time_limit=60.0)
        assert result.status is SolveStatus.OPTIMAL
        assert not result.timed_out

    def test_zero_limit_times_out(self):
        model, _ = self.build(n=20)
        result = solve_brute_force(model, time_limit=0.0)
        assert result.timed_out
        assert result.status in (
            SolveStatus.FEASIBLE, SolveStatus.UNSOLVED
        )
        if result.status is SolveStatus.FEASIBLE:
            # the incumbent must satisfy the model
            assert model.check(result.values)


class TestParallelEqualsSerial:
    def test_objectives_and_code_identical(self, x86, module):
        config = fast_config()
        serial = AllocationEngine(
            x86, config, EngineConfig(jobs=1)
        ).allocate_module(module)
        parallel = AllocationEngine(
            x86, config, EngineConfig(jobs=2)
        ).allocate_module(module)
        assert serial.objectives == parallel.objectives
        for s, p in zip(serial, parallel):
            assert s.function == p.function
            assert s.attempt.status == p.attempt.status
            assert s.attempt.assignment == p.attempt.assignment
            assert format_function(s.final.function) == \
                format_function(p.final.function)

    def test_worker_counters_merge(self, x86, module):
        AllocationEngine(
            x86, fast_config(), EngineConfig(jobs=2)
        ).allocate_module(module)
        counters = snapshot()
        assert counters.get("engine.parallel_solves") == len(
            list(module)
        )
        # solver invocations happened in workers but are visible here;
        # with presolve on, the backend runs once per reduced component
        # (a fully-presolved model reaches no backend at all)
        assert counters.get("presolve.runs") == len(list(module))
        solves = sum(
            v for k, v in counters.items()
            if k.startswith("solver.") and k.endswith(".solves")
        )
        assert solves == counters.get("presolve.components", 0)


class TestResultCache:
    def test_engine_cold_then_warm(self, x86, module, tmp_path):
        config = fast_config()
        cache = str(tmp_path / "cache")
        cold = AllocationEngine(
            x86, config, EngineConfig(jobs=1, cache_dir=cache)
        ).allocate_module(module)
        cold_counters = snapshot()
        n = len(list(module))
        assert cold_counters.get("engine.cache_misses") == n
        assert len(ResultCache(cache)) == n

        reset_stats()
        warm = AllocationEngine(
            x86, config, EngineConfig(jobs=1, cache_dir=cache)
        ).allocate_module(module)
        warm_counters = snapshot()
        assert warm_counters.get("engine.cache_hits") == n
        assert sum(
            v for k, v in warm_counters.items()
            if k.startswith("solver.") and k.endswith(".solves")
        ) == 0
        assert warm.objectives == cold.objectives
        for c, w in zip(cold, warm):
            assert w.cache_hit
            assert w.source == "cache"
            assert c.attempt.assignment == w.attempt.assignment

    def test_config_change_invalidates(self, x86, module, tmp_path):
        cache = str(tmp_path / "cache")
        ec = EngineConfig(jobs=1, cache_dir=cache)
        AllocationEngine(x86, fast_config(), ec).allocate_module(module)
        reset_stats()
        changed = AllocatorConfig(
            time_limit=60.0, code_size_weight=2000.0
        )
        AllocationEngine(x86, changed, ec).allocate_module(module)
        counters = snapshot()
        n = len(list(module))
        assert counters.get("engine.cache_hits", 0.0) == 0
        assert counters.get("engine.cache_misses") == n

    def test_cost_change_invalidates(self, x86, module, tmp_path):
        cache = str(tmp_path / "cache")
        ec = EngineConfig(jobs=1, cache_dir=cache)
        config = fast_config()
        engine = AllocationEngine(x86, config, ec)
        fn = module.functions["sum"]
        engine.allocate(fn)
        reset_stats()
        work = clone_function(fn)
        lower_for_target(work, x86)
        freq = static_frequencies(work)
        for block in freq.counts:
            freq.counts[block] *= 3.0
        engine.allocate(fn, freq)
        counters = snapshot()
        assert counters.get("engine.cache_hits", 0.0) == 0
        assert counters.get("engine.cache_misses") == 1

    def test_stale_record_is_resolved(self, x86, module, tmp_path):
        """A record whose values no longer fit the model re-solves."""
        cache_dir = str(tmp_path / "cache")
        ec = EngineConfig(jobs=1, cache_dir=cache_dir)
        config = fast_config()
        engine = AllocationEngine(x86, config, ec)
        fn = module.functions["double"]
        first = engine.allocate(fn)
        assert first.attempt.succeeded
        cache = ResultCache(cache_dir)
        job = engine._prepare(fn, None)
        record = cache.get(job.fingerprint)
        assert record is not None
        cache.put(CacheRecord(
            fingerprint=record.fingerprint,
            function=record.function,
            status=record.status,
            free_values={},  # guaranteed mismatch
            n_free=record.n_free + 1,
            objective=record.objective,
        ))
        reset_stats()
        again = engine.allocate(fn)
        counters = snapshot()
        assert counters.get("engine.cache_stale") == 1
        assert again.source == "solver"
        assert again.attempt.assignment == first.attempt.assignment

    def test_corrupt_record_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = "ab" + "0" * 62
        path = cache.path_for(fp)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(fp) is None

    def test_version_skew_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = CacheRecord(
            fingerprint="cd" + "0" * 62, function="f",
            status="optimal", free_values={"x": 1}, n_free=1,
        )
        cache.put(record)
        data = cache.path_for(record.fingerprint)
        text = data.read_text().replace('"version": 2', '"version": 0')
        data.write_text(text)
        assert cache.get(record.fingerprint) is None

    def test_record_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = CacheRecord(
            fingerprint="ef" + "1" * 62, function="g",
            status="feasible", free_values={"a": 1, "b": 0},
            n_free=2, objective=12.5, solve_seconds=0.25,
            nodes=3, lp_relaxations=9, backend="scipy",
            timed_out=True,
        )
        cache.put(record)
        loaded = cache.get(record.fingerprint)
        assert loaded == record
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get(record.fingerprint) is None


class TestCacheLRUBound:
    @staticmethod
    def record(tag: str) -> CacheRecord:
        return CacheRecord(
            fingerprint=tag * 32, function=f"f{tag}",
            status="optimal", free_values={"x": 1}, n_free=1,
        )

    @staticmethod
    def age(cache, record, mtime) -> None:
        """Pin a record's recency (mtime drives LRU order)."""
        import os

        os.utime(cache.path_for(record.fingerprint), (mtime, mtime))

    def test_eviction_keeps_newest(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        a, b, c = (self.record(t) for t in "abc")
        cache.put(a)
        self.age(cache, a, 1_000_000.0)
        cache.put(b)
        self.age(cache, b, 1_000_001.0)
        cache.put(c)  # over the bound: the oldest (a) is pruned
        assert len(cache) == 2
        assert cache.get(a.fingerprint) is None
        assert cache.get(b.fingerprint) is not None
        assert cache.get(c.fingerprint) is not None
        assert snapshot()["engine.cache_evictions"] == 1
        assert snapshot()["engine.cache_entries"] == 2

    def test_hit_touches_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        a, b, c = (self.record(t) for t in "abc")
        cache.put(a)
        self.age(cache, a, 1_000_000.0)
        cache.put(b)
        self.age(cache, b, 1_000_001.0)
        # A hit refreshes a's mtime, so b is now least recent.
        assert cache.get(a.fingerprint) is not None
        cache.put(c)
        assert cache.get(a.fingerprint) is not None
        assert cache.get(b.fingerprint) is None

    def test_unbounded_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_ENTRIES", raising=False)
        cache = ResultCache(tmp_path)
        assert cache.max_entries is None
        for tag in "abcdef":
            cache.put(self.record(tag))
        assert len(cache) == 6
        assert snapshot().get("engine.cache_evictions", 0) == 0

    def test_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "3")
        cache = ResultCache(tmp_path)
        assert cache.max_entries == 3
        for i, tag in enumerate("abcde"):
            record = self.record(tag)
            cache.put(record)
            self.age(cache, record, 1_000_000.0 + i)
        assert len(cache) == 3
        # Explicit argument beats the environment.
        assert ResultCache(tmp_path, max_entries=7).max_entries == 7
        # Garbage / non-positive values mean unbounded.
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "nope")
        assert ResultCache(tmp_path).max_entries is None
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "0")
        assert ResultCache(tmp_path).max_entries is None

    def test_engine_config_passthrough(self, x86, module, tmp_path):
        engine = AllocationEngine(
            x86, fast_config(),
            EngineConfig(
                cache_dir=str(tmp_path), cache_max_entries=1
            ),
        )
        engine.allocate_module(module)  # several functions, bound 1
        assert len(engine.cache) == 1
        assert snapshot()["engine.cache_evictions"] >= 1
        # Whichever record survived the bound still replays.
        import json

        record = next(tmp_path.glob("*/*.json"))
        survivor_name = json.loads(record.read_text())["function"]
        survivor = next(
            fn for fn in module if fn.name == survivor_name
        )
        warm = AllocationEngine(
            x86, fast_config(),
            EngineConfig(
                cache_dir=str(tmp_path), cache_max_entries=1
            ),
        ).allocate(survivor)
        assert warm.cache_hit


class TestDeadlineFallback:
    def test_timeout_falls_back_to_baseline(self, x86, module):
        config = AllocatorConfig(
            backend="branch-bound", time_limit=0.0
        )
        result = AllocationEngine(
            x86, config, EngineConfig(jobs=1)
        ).allocate_module(module)
        counters = snapshot()
        for outcome in result:
            assert outcome.fell_back
            assert not outcome.attempt.succeeded
            assert outcome.final.succeeded
            assert outcome.final.allocator != "ip"
        assert counters.get("engine.fallbacks") == len(list(module))

    def test_fallback_disabled_keeps_failure(self, x86, module):
        config = AllocatorConfig(
            backend="branch-bound", time_limit=0.0
        )
        result = AllocationEngine(
            x86, config, EngineConfig(jobs=1, fallback=False)
        ).allocate_module(module)
        for outcome in result:
            assert outcome.source == "fallback"
            assert not outcome.final.succeeded

    def test_baseline_dict_is_used(self, x86, module):
        from repro.baseline import GraphColoringAllocator

        gc = GraphColoringAllocator(x86)
        baseline = {
            fn.name: gc.allocate(fn, None) for fn in module
        }
        config = AllocatorConfig(
            backend="branch-bound", time_limit=0.0
        )
        result = AllocationEngine(
            x86, config, EngineConfig(jobs=1)
        ).allocate_module(module, baseline=baseline)
        for outcome in result:
            assert outcome.final is baseline[outcome.function]


class TestEngineOutcomeShape:
    def test_module_order_preserved(self, x86, module):
        result = AllocationEngine(
            x86, fast_config(), EngineConfig(jobs=2)
        ).allocate_module(module)
        assert [o.function for o in result] == [
            fn.name for fn in module
        ]
        assert len(result) == len(list(module))
        with pytest.raises(KeyError):
            result.outcome("nope")

    def test_single_function_convenience(self, x86, module):
        outcome = AllocationEngine(x86, fast_config()).allocate(
            module.functions["double"]
        )
        assert outcome.function == "double"
        assert outcome.attempt.succeeded
