"""§5.4.2/§5.4.3 — address-mode penalties in the IP model.

The main suite never exercises these (EBP is reserved, ESP never
allocatable), so these tests build pointer-style addresses against the
``allow_ebp`` target and a synthetic ESP-allocatable target to verify:

* the penalised use gets its own higher-cost USEFROM variable and the
  must-allocate constraint routes through it (paper Fig. 4);
* scaled-index must-allocate excludes ESP entirely (paper Fig. 5);
* allocations still validate and execute correctly.
"""

import pytest

from repro.allocation import validate_allocation
from repro.core import ActionKind, AllocatorConfig, IPAllocator
from repro.ir import (
    Address,
    I32,
    IRBuilder,
    Module,
    SlotKind,
)
from repro.sim import AllocatedFunction, Interpreter
from repro.target import (
    TargetMachine,
    X86_ENCODING,
    x86_register_file,
    x86_target,
)


def pointer_chase_fn():
    """A function using a parameter as a bare [reg] pointer."""
    b = IRBuilder("f")
    pp = b.slot("p", kind=SlotKind.PARAM)
    b.block("entry")
    p = b.load(pp)
    v = b.load(Address(base=p), I32)  # bare [reg]: §5.4.2 shape
    b.ret(b.add(v, p))
    return b.done()


class TestEbpPenalty:
    def test_usefrom_penalty_var_created(self, x86_ebp):
        fn = pointer_chase_fn()
        _, model, table, _ = IPAllocator(x86_ebp).build_model(fn)
        usefroms = [
            r for r in table.records
            if r.kind is ActionKind.USEFROM and r.reg == "EBP"
        ]
        assert usefroms, "EBP base use must go through a penalty var"
        assert all(r.var.cost > 0 for r in usefroms)

    def test_no_penalty_vars_without_ebp(self, x86):
        fn = pointer_chase_fn()
        _, model, table, _ = IPAllocator(x86).build_model(fn)
        assert not [
            r for r in table.records
            if r.kind is ActionKind.USEFROM and r.reg == "EBP"
        ]

    def test_allocation_avoids_ebp_base_when_free(self, x86_ebp):
        fn = pointer_chase_fn()
        alloc = IPAllocator(x86_ebp).allocate(fn)
        assert alloc.succeeded
        validate_allocation(alloc, x86_ebp)
        # With plenty of registers free the penalty should steer the
        # pointer away from EBP.
        loads = [
            i for _, _, i in alloc.function.instructions()
            if i.addr is not None and i.addr.base is not None
        ]
        for load in loads:
            assert alloc.assignment[load.addr.base.name].name != "EBP"

    def test_execution_with_pointer(self, x86_ebp):
        # Give the pointer a *real* simulated address: an array slot's
        # base is fetched by writing its address into a scalar first.
        b = IRBuilder("f")
        arr = b.slot("arr", I32, SlotKind.ARRAY, count=4)
        pp = b.slot("off", kind=SlotKind.PARAM)
        b.block("entry")
        off = b.load(pp)
        v = b.load(Address(slot=arr, base=off), I32)  # arr base + off
        b.store(Address(slot=arr, disp=0), b.add(v, b.imm(1)))
        b.ret(b.load(Address(slot=arr, disp=0), I32))
        fn = b.done()
        m = Module("t")
        m.add_function(fn)
        ref = Interpreter(m).run("f", [0]).return_value
        alloc = IPAllocator(x86_ebp).allocate(fn)
        assert alloc.succeeded
        validate_allocation(alloc, x86_ebp)
        got = Interpreter(
            m, target=x86_ebp,
            allocations={"f": AllocatedFunction(
                alloc.function, alloc.assignment
            )},
        ).run("f", [0]).return_value
        assert got == ref


class TestEspExclusion:
    def esp_target(self):
        """A synthetic target where ESP is allocatable, to exercise the
        §5.4.3 exclusion machinery."""
        return TargetMachine(
            name="x86+esp",
            register_file=x86_register_file(),
            allocatable_families=("A", "SP"),
            encoding=X86_ENCODING,
            caller_saved_families=frozenset({"A"}),
            irregular=True,
            mem_operands=False,
            width_aware=True,
        )

    def test_scaled_index_excludes_esp(self):
        target = self.esp_target()
        b = IRBuilder("f")
        arr = b.slot("arr", I32, SlotKind.ARRAY, count=8)
        pi = b.slot("i", kind=SlotKind.PARAM)
        b.block("entry")
        i = b.load(pi)
        v = b.load(Address(slot=arr, index=i, scale=4), I32)
        b.ret(b.add(v, i))
        fn = b.done()
        alloc = IPAllocator(target).allocate(fn)
        assert alloc.succeeded
        # The index register can never be ESP.
        for _, _, instr in alloc.function.instructions():
            for addr in filter(None, (instr.addr, instr.mem_dst)):
                if addr.index is not None and addr.scale != 1:
                    reg = alloc.assignment[addr.index.name]
                    assert reg.family != "SP"

    def test_esp_base_penalised_but_allowed(self):
        target = self.esp_target()
        b = IRBuilder("f")
        pp = b.slot("p", kind=SlotKind.PARAM)
        b.block("entry")
        p = b.load(pp)
        v = b.load(Address(base=p), I32)
        b.ret(v)
        fn = b.done()
        _, model, table, _ = IPAllocator(target).build_model(fn)
        penal = [
            r for r in table.records
            if r.kind is ActionKind.USEFROM and r.reg == "ESP"
        ]
        assert penal and all(r.var.cost > 0 for r in penal)
