"""Tests for the python -m repro command-line interface."""

import pytest

from repro.__main__ import main

SOURCE = """
int helper(int a) { return a * 3; }
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i += 1) { s += helper(i); }
    return s;
}
"""


@pytest.fixture()
def program(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


class TestCLI:
    def test_alloc_all_functions(self, program, capsys):
        assert main(["alloc", program]) == 0
        out = capsys.readouterr().out
        assert "helper: optimal" in out
        assert "main: optimal" in out
        assert "assignment:" in out
        assert "code size:" in out

    def test_alloc_single_function(self, program, capsys):
        assert main(["alloc", program, "--function", "helper"]) == 0
        out = capsys.readouterr().out
        assert "helper" in out and "main: " not in out

    def test_alloc_gc(self, program, capsys):
        assert main(["alloc", program, "--allocator", "gc"]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_alloc_risc_target(self, program, capsys):
        assert main(["alloc", program, "--target", "risc"]) == 0
        assert "r0" in capsys.readouterr().out

    def test_alloc_size_only(self, program, capsys):
        assert main(["alloc", program, "--size-only"]) == 0

    def test_alloc_branch_bound_backend(self, program, capsys):
        assert main([
            "alloc", program, "--function", "helper",
            "--backend", "branch-bound",
        ]) == 0
        assert "optimal" in capsys.readouterr().out

    def test_run_symbolic(self, program, capsys):
        assert main([
            "run", program, "--args", "5", "--allocator", "none",
        ]) == 0
        out = capsys.readouterr().out
        assert "symbolic result: 30" in out

    def test_run_ip(self, program, capsys):
        assert main(["run", program, "--args", "5"]) == 0
        out = capsys.readouterr().out
        assert out.count("30") >= 2  # symbolic and allocated agree

    def test_run_gc(self, program, capsys):
        assert main([
            "run", program, "--args", "4", "--allocator", "gc",
        ]) == 0
        out = capsys.readouterr().out
        assert "graph-coloring result" in out

    def test_report_json_carries_trace_id(self, program, tmp_path):
        import json

        path = tmp_path / "report.json"
        assert main([
            "alloc", program, "--function", "helper",
            "--report-json", str(path), "--trace-id", "ci-run-7",
        ]) == 0
        report = json.loads(path.read_text())
        assert report["trace_id"] == "ci-run-7"
        assert report["functions"][0]["trace_id"] == "ci-run-7"

    def test_report_json_generates_trace_id(self, program, tmp_path):
        import json

        path = tmp_path / "report.json"
        assert main([
            "alloc", program, "--function", "helper",
            "--report-json", str(path),
        ]) == 0
        report = json.loads(path.read_text())
        assert report["trace_id"].startswith("run-")
        assert report["functions"][0]["trace_id"] == \
            report["trace_id"]
