"""Tests for the IRBuilder API and the rewrite helpers."""

import pytest

from repro.ir import (
    Address,
    Cond,
    I8,
    I16,
    I32,
    IRBuilder,
    Opcode,
    SlotKind,
    VirtualRegister,
    clone_function,
    copy_instr,
    map_registers,
    verify_function,
)


class TestBuilder:
    def test_vreg_names_unique(self):
        b = IRBuilder("f")
        r1 = b.vreg("t")
        r2 = b.vreg("t")
        assert r1.name != r2.name

    def test_requires_block(self):
        b = IRBuilder("f")
        with pytest.raises(ValueError, match="no current block"):
            b.li(1)

    def test_duplicate_block_rejected(self):
        b = IRBuilder("f")
        b.block("entry")
        with pytest.raises(ValueError, match="duplicate"):
            b.block("entry")

    def test_switch_to(self):
        b = IRBuilder("f")
        first = b.block("entry")
        b.jump("second")
        b.block("second")
        b.ret(b.li(1))
        b.switch_to("entry")
        assert b.current is first

    def test_load_infers_type_from_slot(self):
        b = IRBuilder("f")
        slot = b.slot("c", I8)
        b.block("entry")
        v = b.load(slot)
        assert v.type == I8

    def test_load_slotless_requires_type(self):
        b = IRBuilder("f")
        b.block("entry")
        base = b.li(100)
        with pytest.raises(ValueError, match="type required"):
            b.load(Address(base=base))

    def test_param_slot_auto_registered(self):
        b = IRBuilder("f")
        p = b.slot("x", kind=SlotKind.PARAM)
        assert p in b.function.params

    def test_all_binary_helpers(self):
        b = IRBuilder("f")
        b.block("entry")
        x = b.li(10)
        for name in ("add", "sub", "and_", "or_", "xor", "mul",
                     "div", "mod", "shl", "shr", "sar"):
            x = getattr(b, name)(x, b.imm(3))
        b.ret(x)
        fn = b.done()
        # lowering aside, the raw IR is structurally fine
        verify_function(fn)


class TestMapRegisters:
    def test_identity_copy(self):
        b = IRBuilder("f")
        b.block("entry")
        x = b.li(1)
        instr = b.current.instrs[0]
        dup = copy_instr(instr)
        assert dup is not instr
        assert dup.opcode == instr.opcode and dup.dst == instr.dst

    def test_use_map_hits_addresses(self):
        b = IRBuilder("f")
        arr = b.slot("a", I32, SlotKind.ARRAY, count=4)
        b.block("entry")
        i = b.li(1, hint="i")
        v = b.load(Address(slot=arr, index=i, scale=4), I32)
        load = b.current.instrs[-1]
        j = b.vreg("j")
        mapped = map_registers(load, lambda r: j if r == i else r)
        assert mapped.addr.index == j

    def test_def_map(self):
        b = IRBuilder("f")
        b.block("entry")
        x = b.li(1)
        instr = b.current.instrs[0]
        y = b.vreg("y")
        mapped = map_registers(instr, lambda r: r, lambda r: y)
        assert mapped.dst == y

    def test_mem_dst_mapped(self):
        from repro.ir import Instr, MemorySlot, plain

        b = IRBuilder("f")
        b.block("entry")
        base = b.li(8, hint="p")
        slot = MemorySlot("s", I32, SlotKind.SPILL)
        instr = Instr(
            Opcode.ADD, srcs=(b.li(1),),
            mem_dst=Address(slot=slot, base=base),
        )
        q = b.vreg("q")
        mapped = map_registers(instr, lambda r: q if r == base else r)
        assert mapped.mem_dst.base == q


class TestClone:
    def test_deep_copy_independent(self, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        clone = clone_function(fn)
        assert clone is not fn
        clone.block("entry").instrs.pop()
        assert len(clone.block("entry")) != len(fn.block("entry"))

    def test_clone_preserves_text(self, loop_sum_module):
        from repro.ir import format_function

        fn = loop_sum_module.functions["sum"]
        assert format_function(clone_function(fn)) == format_function(fn)
