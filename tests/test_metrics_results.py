"""Edge-case tests for metrics rows and solver result plumbing."""

import pytest

from repro.bench.metrics import OverheadRow, SpillOverhead
from repro.solver import (
    IPModel,
    Sense,
    SolveStatus,
    complete_values,
)


class TestOverheadRow:
    def test_ratio(self):
        assert OverheadRow("x", 36.0, 100.0).ratio == pytest.approx(0.36)

    def test_zero_baseline(self):
        assert OverheadRow("x", 0.0, 0.0).ratio == 1.0
        assert OverheadRow("x", 5.0, 0.0).ratio == float("inf")


class TestSpillOverhead:
    def make(self, ip_rows, gc_rows, ip_cyc, gc_cyc, ref_cyc):
        rows = [
            OverheadRow(f"r{i}", a, b)
            for i, (a, b) in enumerate(zip(ip_rows, gc_rows))
        ]
        return SpillOverhead(rows=rows, ip_cycles=ip_cyc,
                             gc_cycles=gc_cyc, ref_cycles=ref_cyc)

    def test_total_row(self):
        so = self.make([1, 2], [3, 4], 0, 0, 0)
        assert so.total_row.ip == 3 and so.total_row.gc == 7

    def test_paper_headline_numbers(self):
        # 551M vs 1410M -> 61% reduction.
        so = self.make([], [], 1551.0, 2410.0, 1000.0)
        assert so.ip_cycle_overhead == pytest.approx(551.0)
        assert so.gc_cycle_overhead == pytest.approx(1410.0)
        assert so.overhead_reduction == pytest.approx(0.609, abs=1e-3)

    def test_negative_baseline_overhead(self):
        so = self.make([], [], 900.0, 950.0, 1000.0)
        assert so.overhead_reduction == 0.0  # undefined regime guarded


class TestSolverPlumbing:
    def test_complete_values_merges_fixed(self):
        m = IPModel()
        x = m.add_var("x", 1.0)
        y = m.add_var("y", 1.0)
        m.fix(y, 1)
        merged = complete_values(m, {x.index: 0})
        assert merged == {x.index: 0, y.index: 1}

    def test_status_has_solution(self):
        assert SolveStatus.OPTIMAL.has_solution
        assert SolveStatus.FEASIBLE.has_solution
        assert not SolveStatus.INFEASIBLE.has_solution
        assert not SolveStatus.UNSOLVED.has_solution

    def test_model_str_mentions_fixings(self):
        m = IPModel("demo")
        x = m.add_var("x", 2.0)
        m.fix(x, 1)
        y = m.add_var("y")
        m.add_constraint([(1, y)], Sense.LE, 1, "cap")
        text = str(m)
        assert "fixed=1" in text and "cap" not in text or "y" in text

    def test_constraint_str(self):
        m = IPModel()
        x = m.add_var("x")
        y = m.add_var("y")
        con = m.add_constraint([(2, x), (1, y)], Sense.GE, 1, "c")
        assert "2*x" in str(con) and ">= 1" in str(con)
