"""Tests of the uniform RISC-24 target path (the prior-work setting)."""

import pytest

from repro.allocation import validate_allocation
from repro.baseline import GraphColoringAllocator
from repro.core import AllocatorConfig, IPAllocator
from repro.ir import Cond, IRBuilder, Module, SlotKind
from repro.sim import AllocatedFunction, Interpreter
from repro.target import risc_target


class TestRiscAllocation:
    def test_ip_allocates_on_risc(self, risc, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        alloc = IPAllocator(risc).allocate(fn)
        assert alloc.succeeded
        validate_allocation(alloc, risc)
        ref = Interpreter(loop_sum_module).run("sum", [7]).return_value
        got = Interpreter(
            loop_sum_module, target=risc,
            allocations={"sum": AllocatedFunction(
                alloc.function, alloc.assignment
            )},
        ).run("sum", [7]).return_value
        assert got == ref

    def test_baseline_allocates_on_risc(self, risc, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        alloc = GraphColoringAllocator(risc).allocate(fn)
        assert alloc.succeeded
        validate_allocation(alloc, risc)

    def test_no_spills_with_24_registers(self, risc):
        # 9 live values fit trivially in 24 registers.
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        vals = [b.add(n, b.imm(k), hint=f"v{k}") for k in range(9)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        fn = b.done()
        alloc = IPAllocator(risc).allocate(fn)
        assert alloc.succeeded
        assert alloc.stats.loads == 0
        assert alloc.stats.stores == 0
        assert alloc.stats.copies_inserted == 0  # three-address ALU

    def test_same_function_x86_needs_work(self, x86):
        # The identical function on x86 needs copies/spills/mem ops.
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        vals = [b.add(n, b.imm(k), hint=f"v{k}") for k in range(9)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        fn = b.done()
        alloc = IPAllocator(x86).allocate(fn)
        assert alloc.succeeded
        effort = (alloc.stats.loads + alloc.stats.stores
                  + alloc.stats.copies_inserted
                  + alloc.stats.mem_operand_uses
                  + alloc.stats.rmw_mem_defs)
        assert effort > 0

    def test_risc_result_register_convention(self, risc):
        m = Module("t")
        b = IRBuilder("callee")
        pa = b.slot("a", kind=SlotKind.PARAM)
        b.block("entry")
        b.ret(b.load(pa))
        m.add_function(b.done())

        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        r = b.call("callee", [n])
        b.ret(b.add(r, n))
        fn = b.done()
        m.add_function(fn)
        alloc = IPAllocator(risc).allocate(fn)
        assert alloc.succeeded
        validate_allocation(alloc, risc)
        ref = Interpreter(m).run("f", [5]).return_value
        got = Interpreter(
            m, target=risc,
            allocations={"f": AllocatedFunction(
                alloc.function, alloc.assignment
            )},
        ).run("f", [5]).return_value
        assert got == ref == 10
