"""Tests for the IR verifier."""

import pytest

from repro.ir import (
    Cond,
    I8,
    I32,
    Immediate,
    Instr,
    IRBuilder,
    Opcode,
    SlotKind,
    VerificationError,
    VirtualRegister,
    verify_function,
)


def minimal():
    b = IRBuilder("f")
    b.block("entry")
    b.ret(b.li(0))
    return b


class TestStructural:
    def test_valid_minimal(self):
        verify_function(minimal().done())

    def test_missing_terminator(self):
        b = IRBuilder("f")
        b.block("entry")
        b.li(0)
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(b.done())

    def test_terminator_mid_block(self):
        b = minimal()
        b.current.instrs.append(Instr(Opcode.RET))
        b.current.instrs.append(
            Instr(Opcode.LI, dst=b.vreg(), srcs=(Immediate(0, I32),))
        )
        b.current.instrs.append(Instr(Opcode.RET))
        with pytest.raises(VerificationError, match="middle"):
            verify_function(b.done())

    def test_dangling_branch(self):
        b = IRBuilder("f")
        b.block("entry")
        b.jump("nowhere")
        with pytest.raises(VerificationError, match="unknown block"):
            verify_function(b.done())

    def test_empty_function(self):
        from repro.ir import Function

        with pytest.raises(VerificationError):
            verify_function(Function("empty"))

    def test_unknown_slot(self):
        from repro.ir import Address, MemorySlot

        b = IRBuilder("f")
        b.block("entry")
        rogue = MemorySlot("rogue", I32, SlotKind.LOCAL)
        b.emit(Instr(Opcode.LOAD, dst=b.vreg("x"),
                     addr=Address(slot=rogue)))
        b.ret(b.li(0))
        with pytest.raises(VerificationError, match="unknown slot"):
            verify_function(b.done())


class TestWidths:
    def test_alu_width_mismatch(self):
        b = IRBuilder("f")
        b.block("entry")
        a = b.li(1, I32)
        c = b.li(1, I8)
        b.current.instrs.append(
            Instr(Opcode.ADD, dst=b.vreg("d", I32), srcs=(a, c))
        )
        b.ret(b.li(0))
        with pytest.raises(VerificationError, match="width"):
            verify_function(b.done())

    def test_sext_must_widen(self):
        b = IRBuilder("f")
        b.block("entry")
        a = b.li(1, I32)
        b.current.instrs.append(
            Instr(Opcode.SEXT, dst=b.vreg("d", I8), srcs=(a,))
        )
        b.ret(b.li(0))
        with pytest.raises(VerificationError, match="widen"):
            verify_function(b.done())

    def test_trunc_must_narrow(self):
        b = IRBuilder("f")
        b.block("entry")
        a = b.li(1, I8)
        b.current.instrs.append(
            Instr(Opcode.TRUNC, dst=b.vreg("d", I32), srcs=(a,))
        )
        b.ret(b.li(0))
        with pytest.raises(VerificationError, match="narrow"):
            verify_function(b.done())

    def test_address_registers_must_be_i32(self):
        from repro.ir import Address

        b = IRBuilder("f")
        arr = b.slot("a", I32, SlotKind.ARRAY, count=4)
        b.block("entry")
        narrow = b.li(1, I8)
        b.emit(Instr(
            Opcode.LOAD, dst=b.vreg("x", I32),
            addr=Address(slot=arr, index=narrow, scale=4),
        ))
        b.ret(b.li(0))
        with pytest.raises(VerificationError, match="32-bit"):
            verify_function(b.done())


class TestDefiniteDefinition:
    def test_use_before_def(self):
        b = IRBuilder("f")
        b.block("entry")
        ghost = b.vreg("ghost")
        b.ret(b.add(ghost, b.imm(1)))
        with pytest.raises(VerificationError, match="undefined"):
            verify_function(b.done())

    def test_def_on_one_path_only(self):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        maybe = b.vreg("maybe")
        b.cjump(Cond.GT, n, b.imm(0), "yes", "join")
        b.block("yes")
        b.emit(Instr(Opcode.LI, dst=maybe, srcs=(Immediate(1, I32),)))
        b.jump("join")
        b.block("join")
        b.ret(b.add(maybe, b.imm(0)))
        with pytest.raises(VerificationError, match="undefined"):
            verify_function(b.done())

    def test_def_on_all_paths_ok(self):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        val = b.vreg("val")
        b.cjump(Cond.GT, n, b.imm(0), "yes", "no")
        b.block("yes")
        b.emit(Instr(Opcode.LI, dst=val, srcs=(Immediate(1, I32),)))
        b.jump("join")
        b.block("no")
        b.emit(Instr(Opcode.LI, dst=val, srcs=(Immediate(2, I32),)))
        b.jump("join")
        b.block("join")
        b.ret(val)
        verify_function(b.done())

    def test_loop_carried_ok(self, loop_sum_module):
        for fn in loop_sum_module:
            verify_function(fn)
