"""Tests for machine state: overlap-true register file and flat memory."""

import pytest

from repro.ir import I8, I16, I32, MemorySlot, SlotKind
from repro.sim import Memory, RegisterState, SimulationError
from repro.target import x86_register_file


class TestRegisterOverlap:
    def setup_method(self):
        self.rf = x86_register_file()
        self.state = RegisterState(self.rf)

    def test_simple_roundtrip(self):
        self.state.write(self.rf["EAX"], 123456)
        assert self.state.read(self.rf["EAX"], I32) == 123456

    def test_negative_wraps(self):
        self.state.write(self.rf["EAX"], -1)
        assert self.state.read(self.rf["EAX"], I32) == -1
        assert self.state.read(self.rf["AL"], I8) == -1
        assert self.state.read(self.rf["AX"], I16) == -1

    def test_writing_ax_clobbers_low_half_of_eax(self):
        self.state.write(self.rf["EAX"], 0x11223344)
        self.state.write(self.rf["AX"], 0x5566)
        assert self.state.read(self.rf["EAX"], I32) == 0x11225566

    def test_al_ah_independent(self):
        # The paper's §5.3 subtlety, physically.
        self.state.write(self.rf["AL"], 0x11)
        self.state.write(self.rf["AH"], 0x22)
        assert self.state.read(self.rf["AL"], I8) == 0x11
        assert self.state.read(self.rf["AH"], I8) == 0x22
        assert self.state.read(self.rf["AX"], I16) == 0x2211

    def test_writing_eax_clobbers_subregisters(self):
        self.state.write(self.rf["AL"], 0x7F)
        self.state.write(self.rf["EAX"], 0)
        assert self.state.read(self.rf["AL"], I8) == 0

    def test_families_independent(self):
        self.state.write(self.rf["EAX"], 1)
        self.state.write(self.rf["EBX"], 2)
        assert self.state.read(self.rf["EAX"], I32) == 1

    def test_clobber_family(self):
        self.state.write(self.rf["ECX"], 7)
        self.state.clobber_family("C")
        assert self.state.read(self.rf["ECX"], I32) != 7

    def test_snapshot_restore(self):
        self.state.write(self.rf["ESI"], 42)
        snap = self.state.snapshot()
        self.state.write(self.rf["ESI"], 0)
        self.state.restore(snap)
        assert self.state.read(self.rf["ESI"], I32) == 42


class TestMemory:
    def test_allocate_and_rw(self):
        mem = Memory()
        slot = MemorySlot("x", I32, SlotKind.LOCAL)
        addr = mem.allocate(slot)
        mem.write(addr, -5, I32)
        assert mem.read(addr, I32) == -5

    def test_widths_and_endianness(self):
        mem = Memory()
        slot = MemorySlot("x", I32, SlotKind.LOCAL)
        addr = mem.allocate(slot)
        mem.write(addr, 0x11223344, I32)
        assert mem.read(addr, I8) == 0x44  # little-endian low byte

    def test_alignment(self):
        mem = Memory()
        mem.allocate(MemorySlot("c", I8, SlotKind.LOCAL))
        addr = mem.allocate(MemorySlot("x", I32, SlotKind.LOCAL))
        assert addr % 4 == 0

    def test_stack_discipline(self):
        mem = Memory()
        mark = mem.mark
        mem.allocate(MemorySlot("x", I32, SlotKind.LOCAL))
        mem.free_to(mark)
        addr2 = mem.allocate(MemorySlot("y", I32, SlotKind.LOCAL))
        assert addr2 >= mark

    def test_bad_address(self):
        mem = Memory()
        with pytest.raises(SimulationError):
            mem.read(0, I32)
        with pytest.raises(SimulationError):
            mem.write(10 ** 9, 1, I32)

    def test_out_of_memory(self):
        mem = Memory(size=64)
        with pytest.raises(SimulationError):
            mem.allocate(MemorySlot("big", I32, SlotKind.ARRAY, count=100))
