"""Tests for loop detection, frequency estimation and web splitting."""

from repro.analysis import (
    STATIC_LOOP_WEIGHT,
    build_cfg,
    compute_liveness,
    find_loops,
    profiled_frequencies,
    split_webs,
    static_frequencies,
)
from repro.ir import Cond, IRBuilder, SlotKind, verify_function
from repro.sim import Interpreter


def nested_loops():
    b = IRBuilder("nest")
    pn = b.slot("n", kind=SlotKind.PARAM)
    b.block("entry")
    n = b.load(pn)
    i = b.li(0, hint="i")
    b.jump("outer")
    b.block("outer")
    b.cjump(Cond.LT, i, n, "inner_init", "exit")
    b.block("inner_init")
    j = b.li(0, hint="j")
    b.jump("inner")
    b.block("inner")
    b.cjump(Cond.LT, j, n, "inner_body", "outer_step")
    b.block("inner_body")
    b.copy_into(j, b.add(j, b.imm(1)))
    b.jump("inner")
    b.block("outer_step")
    b.copy_into(i, b.add(i, b.imm(1)))
    b.jump("outer")
    b.block("exit")
    b.ret(i)
    fn = b.done()
    verify_function(fn)
    return fn


class TestLoops:
    def test_nested_depths(self):
        fn = nested_loops()
        info = find_loops(build_cfg(fn))
        assert info.depth_of("entry") == 0
        assert info.depth_of("outer") == 1
        assert info.depth_of("inner") == 2
        assert info.depth_of("inner_body") == 2
        assert info.depth_of("outer_step") == 1
        assert info.depth_of("exit") == 0

    def test_loop_headers(self):
        fn = nested_loops()
        info = find_loops(build_cfg(fn))
        headers = {l.header for l in info.loops}
        assert headers == {"outer", "inner"}

    def test_no_loops_in_diamond(self):
        b = IRBuilder("d")
        b.block("entry")
        x = b.li(1)
        b.cjump(Cond.GT, x, b.imm(0), "a", "b")
        b.block("a")
        b.jump("j")
        b.block("b")
        b.jump("j")
        b.block("j")
        b.ret(x)
        info = find_loops(build_cfg(b.done()))
        assert info.loops == ()


class TestFrequencies:
    def test_static_follows_depth(self):
        fn = nested_loops()
        freq = static_frequencies(fn)
        assert freq.of("entry") == 1.0
        assert freq.of("outer") == STATIC_LOOP_WEIGHT
        assert freq.of("inner") == STATIC_LOOP_WEIGHT ** 2
        assert freq.source == "static"

    def test_profiled_matches_interpreter(self, loop_sum_module):
        run = Interpreter(loop_sum_module).run("sum", [10])
        fn = loop_sum_module.functions["sum"]
        freq = profiled_frequencies(fn, run.blocks_of("sum"))
        assert freq.of("entry") == 1.0
        assert freq.of("body") == 11.0  # i = 0..10 inclusive
        assert freq.source == "profile"

    def test_profiled_unexecuted_gets_epsilon(self, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        freq = profiled_frequencies(fn, {})
        assert 0 < freq.of("body") < 1


class TestWebs:
    def test_disjoint_reuses_split(self):
        # t is used as two completely independent temporaries.
        b = IRBuilder("w")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        t = b.vreg("t")
        from repro.ir import Immediate, Instr, Opcode, I32

        b.emit(Instr(Opcode.LI, dst=t, srcs=(Immediate(1, I32),)))
        a = b.add(t, n, hint="a")
        b.emit(Instr(Opcode.LI, dst=t, srcs=(Immediate(2, I32),)))
        c = b.add(t, a, hint="c")
        b.ret(c)
        fn = b.done()
        verify_function(fn)
        created = split_webs(fn)
        assert created == 2  # both independent webs get fresh names
        verify_function(fn)

    def test_loop_carried_not_split(self, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        before = {v.name for v in fn.vregs()}
        split_webs(fn)
        after = {v.name for v in fn.vregs()}
        assert before == after  # phi-connected defs form one web
        verify_function(fn)

    def test_semantics_preserved(self):
        from repro.bench.generator import GeneratorConfig, generate_module

        module = generate_module(
            123, GeneratorConfig(n_functions=2, body_statements=(3, 6))
        )
        ref = Interpreter(module).run("main", [4]).return_value
        for fn in module:
            split_webs(fn)
            verify_function(fn)
        got = Interpreter(module).run("main", [4]).return_value
        assert got == ref
