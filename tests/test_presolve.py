"""Tests for the presolve subsystem: passes, reduction mapping, solver
wiring, configuration plumbing, and fingerprint coverage."""

import pytest

from repro.presolve import (
    PRESOLVE_ENV,
    PresolveConfig,
    presolve_enabled_default,
    presolve_model,
    resolve_presolve_config,
)
from repro.solver import IPModel, Sense, SolveStatus, solve


def model_of(constraints, costs):
    """Build a model from [(terms, sense, rhs)] over named costs."""
    m = IPModel("t")
    xs = {name: m.add_var(name, cost) for name, cost in costs.items()}
    for terms, sense, rhs in constraints:
        m.add_constraint(
            [(c, xs[n]) for c, n in terms], sense, rhs
        )
    return m, xs


def assert_equivalent(m, backend="scipy"):
    """Presolve on/off agree on status and objective; the presolved
    solution satisfies the original model."""
    on = solve(m, backend=backend, presolve=True)
    off = solve(m, backend=backend, presolve=False)
    assert on.status == off.status
    if off.status.has_solution:
        assert on.objective == pytest.approx(off.objective)
        assert m.check(on.values)
    assert on.presolve is not None
    assert off.presolve is None
    return on


class TestFixImplied:
    def test_ge_singleton_forces_one(self):
        m, xs = model_of(
            [([(1, "x")], Sense.GE, 1)], {"x": 5.0, "y": -2.0}
        )
        red = presolve_model(m)
        assert red.fixed[xs["x"].index] == 1
        # y is an orphan with negative cost: fixed to 1
        assert red.fixed[xs["y"].index] == 1
        assert not red.submodels

    def test_le_overshoot_forces_zero(self):
        m, xs = model_of(
            [([(2, "x"), (1, "y")], Sense.LE, 1)],
            {"x": -1.0, "y": -1.0},
        )
        red = presolve_model(m)
        assert red.fixed[xs["x"].index] == 0
        # then y <= 1 is vacuous; y is an orphan, cost < 0 -> 1
        assert red.fixed[xs["y"].index] == 1
        assert red.summary.cons_dropped == 1

    def test_negative_coefficient_forced(self):
        # -x <= -1  ==  x >= 1
        m, xs = model_of(
            [([(-1, "x")], Sense.LE, -1)], {"x": 3.0}
        )
        red = presolve_model(m)
        assert red.fixed[xs["x"].index] == 1

    def test_vacuous_row_dropped(self):
        m, _ = model_of(
            [([(1, "x"), (1, "y")], Sense.LE, 2)],
            {"x": 1.0, "y": 1.0},
        )
        red = presolve_model(m)
        assert red.summary.cons_dropped == 1
        assert red.summary.post_constraints == 0

    def test_infeasible_detected(self):
        m, _ = model_of(
            [([(1, "x"), (1, "y")], Sense.GE, 3)],
            {"x": 1.0, "y": 1.0},
        )
        red = presolve_model(m)
        assert red.infeasible
        result = solve(m, presolve=True)
        assert result.status is SolveStatus.INFEASIBLE
        assert solve(m, presolve=False).status is SolveStatus.INFEASIBLE

    def test_eq_chain_propagates(self):
        # x == 1 forces, via x + y <= 1, y == 0.
        m, xs = model_of(
            [
                ([(1, "x")], Sense.EQ, 1),
                ([(1, "x"), (1, "y")], Sense.LE, 1),
            ],
            {"x": 1.0, "y": -1.0},
        )
        red = presolve_model(m)
        assert red.fixed[xs["x"].index] == 1
        assert red.fixed[xs["y"].index] == 0


class TestMergeDuplicateColumns:
    def test_exclusive_duplicates_merge_to_cheapest(self):
        # pick exactly one of three identical columns: keep cheapest
        m, xs = model_of(
            [
                ([(1, "a"), (1, "b"), (1, "c")], Sense.LE, 1),
                ([(1, "a"), (1, "b"), (1, "c")], Sense.GE, 1),
            ],
            {"a": 3.0, "b": 1.0, "c": 2.0},
        )
        on = assert_equivalent(m)
        assert on.objective == pytest.approx(1.0)
        assert on.values[xs["b"].index] == 1
        assert on.presolve.cols_merged == 2

    def test_non_exclusive_duplicates_not_merged(self):
        # x + y == 2 forces BOTH to 1; merging would be unsound.
        m, xs = model_of(
            [([(1, "x"), (1, "y")], Sense.EQ, 2)],
            {"x": 1.0, "y": 5.0},
        )
        on = assert_equivalent(m)
        assert on.objective == pytest.approx(6.0)
        assert on.values[xs["x"].index] == 1
        assert on.values[xs["y"].index] == 1

    def test_ge_only_rows_never_certify_exclusivity(self):
        # x + y >= 1 allows both at 1; costs are negative so the
        # optimum needs both.
        m, _ = model_of(
            [([(1, "x"), (1, "y")], Sense.GE, 1)],
            {"x": -2.0, "y": -1.0},
        )
        on = assert_equivalent(m)
        assert on.objective == pytest.approx(-3.0)


class TestDropDominated:
    def test_looser_le_dropped(self):
        m, _ = model_of(
            [
                ([(1, "x"), (1, "y")], Sense.LE, 1),
                ([(1, "x"), (1, "y")], Sense.LE, 2),
            ],
            {"x": -1.0, "y": -2.0},
        )
        red = presolve_model(m, PresolveConfig(
            fix_implied=False, merge_duplicate_columns=False
        ))
        # the <= 2 row is vacuous anyway, but dominance alone drops it
        assert red.summary.cons_dropped >= 1
        assert_equivalent(m)

    def test_exact_duplicate_eq_dropped(self):
        m, _ = model_of(
            [
                ([(1, "x"), (1, "y")], Sense.EQ, 1),
                ([(1, "x"), (1, "y")], Sense.EQ, 1),
            ],
            {"x": 2.0, "y": 1.0},
        )
        red = presolve_model(m, PresolveConfig(
            fix_implied=False, merge_duplicate_columns=False
        ))
        assert red.summary.cons_dropped == 1
        assert_equivalent(m)

    def test_ge_dominance_mirrored(self):
        # x + y >= 2 implies x + y >= 1
        m, _ = model_of(
            [
                ([(1, "x"), (1, "y")], Sense.GE, 2),
                ([(1, "x"), (1, "y")], Sense.GE, 1),
            ],
            {"x": 1.0, "y": 1.0},
        )
        red = presolve_model(m, PresolveConfig(
            fix_implied=False, merge_duplicate_columns=False
        ))
        assert red.summary.cons_dropped >= 1
        assert_equivalent(m)

    def test_tighter_row_not_dropped(self):
        m, _ = model_of(
            [
                ([(1, "x"), (1, "y")], Sense.LE, 1),
                ([(1, "x")], Sense.LE, 0),
            ],
            {"x": -5.0, "y": -1.0},
        )
        on = assert_equivalent(m)
        assert on.objective == pytest.approx(-1.0)


class TestDecomposition:
    def test_independent_components_split(self):
        m, _ = model_of(
            [
                ([(1, "a"), (1, "b")], Sense.EQ, 1),
                ([(1, "c"), (1, "d")], Sense.EQ, 1),
            ],
            {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0},
        )
        red = presolve_model(m, PresolveConfig(
            merge_duplicate_columns=False
        ))
        assert red.summary.components == 2
        on = assert_equivalent(m)
        assert on.objective == pytest.approx(4.0)

    def test_decompose_off_keeps_one_submodel(self):
        m, _ = model_of(
            [
                ([(1, "a"), (1, "b")], Sense.EQ, 1),
                ([(1, "c"), (1, "d")], Sense.EQ, 1),
            ],
            {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0},
        )
        red = presolve_model(m, PresolveConfig(
            merge_duplicate_columns=False, decompose=False
        ))
        assert red.summary.components == 1


class TestOrphans:
    def test_costs_decide_unconstrained_variables(self):
        m, xs = model_of([], {"neg": -1.0, "pos": 1.0, "zero": 0.0})
        red = presolve_model(m)
        assert red.fixed[xs["neg"].index] == 1
        assert red.fixed[xs["pos"].index] == 0
        assert red.fixed[xs["zero"].index] == 0
        on = assert_equivalent(m)
        assert on.objective == pytest.approx(-1.0)


class TestReductionMapping:
    def test_expand_covers_build_time_fixes(self):
        m = IPModel("t")
        a = m.add_var("a", 1.0)
        b = m.add_var("b", 2.0)
        m.fix(a, 1)
        m.add_constraint([(1, a), (1, b)], Sense.LE, 1)
        on = assert_equivalent(m)
        assert on.values[a.index] == 1
        assert on.values[b.index] == 0

    def test_deterministic(self):
        m, _ = model_of(
            [
                ([(1, "a"), (1, "b"), (1, "c")], Sense.LE, 1),
                ([(1, "a"), (1, "b"), (1, "c")], Sense.GE, 1),
                ([(1, "d"), (-1, "a")], Sense.GE, 0),
            ],
            {"a": 3.0, "b": 1.0, "c": 2.0, "d": 1.0},
        )
        first = presolve_model(m)
        second = presolve_model(m)
        d1, d2 = first.summary.to_dict(), second.summary.to_dict()
        d1.pop("seconds"), d2.pop("seconds")
        assert d1 == d2
        assert first.fixed == second.fixed
        r1 = solve(m, presolve=True)
        r2 = solve(m, presolve=True)
        assert r1.values == r2.values

    def test_original_model_untouched(self):
        m, _ = model_of(
            [([(1, "x")], Sense.GE, 1)], {"x": 1.0, "y": 2.0}
        )
        n_vars, n_cons = m.n_vars, m.n_constraints
        presolve_model(m)
        assert m.n_vars == n_vars
        assert m.n_constraints == n_cons


class TestConfigPlumbing:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(PRESOLVE_ENV, raising=False)
        assert presolve_enabled_default()
        monkeypatch.setenv(PRESOLVE_ENV, "0")
        assert not presolve_enabled_default()
        monkeypatch.setenv(PRESOLVE_ENV, "1")
        assert presolve_enabled_default()

    def test_solve_follows_env(self, monkeypatch):
        m, _ = model_of([([(1, "x")], Sense.GE, 1)], {"x": 1.0})
        monkeypatch.setenv(PRESOLVE_ENV, "0")
        assert solve(m).presolve is None
        monkeypatch.delenv(PRESOLVE_ENV)
        assert solve(m).presolve is not None

    def test_resolve_forms(self):
        assert resolve_presolve_config(True).enabled
        assert not resolve_presolve_config(False).enabled
        cfg = PresolveConfig(drop_dominated=False)
        assert resolve_presolve_config(cfg) is cfg

    def test_signature_lists_every_knob(self):
        sig = PresolveConfig().signature()
        assert set(sig) == {
            "enabled", "fix_implied", "merge_duplicate_columns",
            "drop_dominated", "decompose", "max_rounds",
            "dominance_candidate_limit",
        }

    def test_pass_toggles_respected(self):
        m, _ = model_of(
            [
                ([(1, "a"), (1, "b")], Sense.LE, 1),
                ([(1, "a"), (1, "b")], Sense.LE, 2),
            ],
            {"a": -1.0, "b": -1.0},
        )
        red = presolve_model(m, PresolveConfig(
            fix_implied=False, merge_duplicate_columns=False,
            drop_dominated=False, decompose=False,
        ))
        assert red.summary.cons_dropped == 0
        assert red.summary.post_constraints == 2


class TestSolverWiring:
    def test_summary_attached_and_counters_bump(self):
        from repro.obs import enable, snapshot

        enable(stats=True)
        before = snapshot()
        m, _ = model_of(
            [
                ([(1, "a"), (1, "b")], Sense.LE, 1),
                ([(1, "a"), (1, "b")], Sense.LE, 2),
            ],
            {"a": -1.0, "b": -3.0},
        )
        result = solve(m, presolve=True)
        after = snapshot()
        assert result.presolve.pre_constraints == 2
        assert after["presolve.runs"] > before.get("presolve.runs", 0)
        assert after["presolve.cons_dropped"] > before.get(
            "presolve.cons_dropped", 0
        )
        assert after["presolve.time"] > before.get("presolve.time", 0)

    def test_fully_presolved_model_skips_backend(self):
        m, _ = model_of([([(1, "x")], Sense.GE, 1)], {"x": 2.0})
        result = solve(m, presolve=True)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(2.0)
        assert result.presolve.components == 0
        assert result.nodes == 0

    @pytest.mark.parametrize(
        "backend", ["scipy", "branch-bound", "brute-force"]
    )
    def test_all_backends_through_presolve(self, backend):
        m, _ = model_of(
            [
                ([(1, "a"), (1, "b"), (1, "c")], Sense.GE, 1),
                ([(1, "a"), (1, "b"), (1, "c")], Sense.LE, 1),
                ([(1, "d"), (1, "e")], Sense.EQ, 1),
            ],
            {"a": 4.0, "b": 2.0, "c": 3.0, "d": 1.0, "e": 5.0},
        )
        on = assert_equivalent(m, backend=backend)
        assert on.objective == pytest.approx(3.0)


class TestFingerprintCoverage:
    def test_presolve_toggle_changes_fingerprint(self):
        from dataclasses import replace

        from repro.core import AllocatorConfig
        from repro.engine.fingerprint import (
            allocation_fingerprint,
            config_signature,
        )
        from repro.target import x86_target

        config = AllocatorConfig(presolve=True)
        assert "presolve" in config_signature(config)
        target = x86_target()
        with_presolve = allocation_fingerprint("ir", target, config)
        without = allocation_fingerprint(
            "ir", target, replace(config, presolve=False)
        )
        assert with_presolve != without
