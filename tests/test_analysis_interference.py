"""Tests for interference-graph construction."""

from repro.analysis import build_interference, static_frequencies
from repro.ir import IRBuilder, SlotKind


def straightline():
    b = IRBuilder("f")
    pn = b.slot("n", kind=SlotKind.PARAM)
    b.block("entry")
    n = b.load(pn)
    a = b.add(n, b.imm(1), hint="a")
    c = b.add(a, n, hint="c")  # n and a overlap
    b.ret(c)
    return b.done(), (n, a, c)


class TestInterference:
    def test_overlapping_ranges_interfere(self):
        fn, (n, a, c) = straightline()
        g = build_interference(fn)
        assert g.interferes(n, a)
        assert not g.interferes(a, c)  # a dies where c is born
        assert g.degree(n) >= 1

    def test_copy_src_dst_do_not_interfere(self):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        x = b.vreg("x")
        b.copy_into(x, n)
        b.ret(b.add(x, b.imm(1)))
        fn = b.done()
        g = build_interference(fn)
        assert not g.interferes(x, n)
        assert (x, n) in g.move_pairs

    def test_copy_pair_interferes_if_src_redefined(self):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        x = b.vreg("x")
        b.copy_into(x, n)
        b.load_into(n, pn)  # n redefined while x lives
        b.ret(b.add(x, n))
        fn = b.done()
        g = build_interference(fn)
        assert g.interferes(x, n)

    def test_spill_costs_frequency_weighted(self, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        freq = static_frequencies(fn)
        g = build_interference(fn, freq=freq)
        i = next(v for v in fn.vregs() if v.name == "i")
        n = next(v for v in fn.vregs() if v.name == "t")
        # i is touched in the loop body; n only outside + the compare.
        assert g.spill_cost[i] > g.spill_cost[n] / 3

    def test_all_vregs_are_nodes(self, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        g = build_interference(fn)
        assert set(fn.vregs()) <= g.nodes
