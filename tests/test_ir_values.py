"""Tests for repro.ir.values."""

import pytest

from repro.ir import (
    I8,
    I32,
    Address,
    Immediate,
    MemorySlot,
    SlotKind,
    VirtualRegister,
    plain,
)


class TestVirtualRegister:
    def test_identity_by_name_and_type(self):
        a = VirtualRegister("x", I32)
        b = VirtualRegister("x", I32)
        assert a == b and hash(a) == hash(b)
        assert a != VirtualRegister("x", I8)

    def test_str(self):
        assert str(VirtualRegister("x", I32)) == "%x:i32"


class TestImmediate:
    def test_range_checked(self):
        Immediate(127, I8)
        with pytest.raises(ValueError):
            Immediate(128, I8)
        with pytest.raises(ValueError):
            Immediate(-129, I8)

    def test_str(self):
        assert str(Immediate(5, I32)) == "5:i32"


class TestMemorySlot:
    def test_scalar(self):
        s = MemorySlot("x", I32, SlotKind.LOCAL)
        assert s.size_bytes == 4
        assert not s.is_predefined

    def test_array(self):
        s = MemorySlot("a", I8, SlotKind.ARRAY, count=10)
        assert s.size_bytes == 10

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            MemorySlot("a", I32, SlotKind.ARRAY, count=0)

    def test_predefined(self):
        assert MemorySlot("p", I32, SlotKind.PARAM).is_predefined
        assert MemorySlot("g", I32, SlotKind.GLOBAL).is_predefined
        assert not MemorySlot("l", I32, SlotKind.LOCAL).is_predefined
        assert not MemorySlot("s", I32, SlotKind.SPILL).is_predefined


class TestAddress:
    def test_requires_something(self):
        with pytest.raises(ValueError):
            Address()

    def test_scale_validation(self):
        idx = VirtualRegister("i", I32)
        for scale in (1, 2, 4, 8):
            Address(index=idx, scale=scale)
        with pytest.raises(ValueError):
            Address(index=idx, scale=3)

    def test_plain(self):
        slot = MemorySlot("x", I32, SlotKind.LOCAL)
        addr = plain(slot)
        assert addr.is_plain_slot
        assert addr.registers == ()

    def test_not_plain_with_disp(self):
        slot = MemorySlot("x", I32, SlotKind.LOCAL)
        assert not Address(slot=slot, disp=4).is_plain_slot

    def test_registers(self):
        base = VirtualRegister("b", I32)
        idx = VirtualRegister("i", I32)
        addr = Address(base=base, index=idx, scale=4)
        assert addr.registers == (base, idx)
        assert addr.uses_scaled_index

    def test_unscaled_index(self):
        idx = VirtualRegister("i", I32)
        assert not Address(index=idx, scale=1).uses_scaled_index

    def test_str(self):
        slot = MemorySlot("arr", I32, SlotKind.ARRAY, count=4)
        idx = VirtualRegister("i", I32)
        assert str(Address(slot=slot, index=idx, scale=4, disp=8)) == \
            "[@arr + 4*%i + 8]"
