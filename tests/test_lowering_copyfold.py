"""Tests for target lowering and pre-RA copy folding."""

from repro.copyfold import fold_copies, fold_module
from repro.ir import (
    Cond,
    I32,
    Immediate,
    Instr,
    IRBuilder,
    Module,
    Opcode,
    SlotKind,
    verify_function,
)
from repro.lowering import lower_for_target
from repro.sim import Interpreter
from repro.target import risc_target, x86_target


class TestLowering:
    def test_div_immediate_materialised(self, x86):
        b = IRBuilder("f")
        b.block("entry")
        x = b.li(10)
        b.ret(b.div(x, b.imm(3)))
        fn = b.done()
        n = lower_for_target(fn, x86)
        assert n == 1
        div = next(i for _, _, i in fn.instructions()
                   if i.opcode is Opcode.DIV)
        assert not div.has_immediate_src()
        verify_function(fn)

    def test_cjump_first_imm_materialised(self, x86):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        b.cjump(Cond.LT, b.imm(3), n, "a", "b")
        b.block("a")
        b.ret(b.imm(1))
        b.block("b")
        b.ret(b.imm(0))
        fn = b.done()
        assert lower_for_target(fn, x86) >= 1
        cj = next(i for _, _, i in fn.instructions()
                  if i.opcode is Opcode.CJUMP)
        assert not isinstance(cj.srcs[0], Immediate)

    def test_ret_imm_materialised(self, x86):
        b = IRBuilder("f")
        b.block("entry")
        b.ret(b.imm(5))
        fn = b.done()
        assert lower_for_target(fn, x86) == 1

    def test_forced_tie_immediate(self, x86):
        # d = 5 - b: the only tie candidate is the immediate.
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        d = b.vreg("d")
        b.emit(Instr(Opcode.SUB, dst=d, srcs=(Immediate(5, I32), n)))
        b.ret(d)
        fn = b.done()
        assert lower_for_target(fn, x86) == 1
        sub = next(i for _, _, i in fn.instructions()
                   if i.opcode is Opcode.SUB)
        assert sub.tied_source_candidates() != ()

    def test_risc_is_noop(self, risc):
        b = IRBuilder("f")
        b.block("entry")
        x = b.li(10)
        b.ret(b.div(x, b.imm(3)))
        fn = b.done()
        assert lower_for_target(fn, risc) == 0

    def test_semantics_preserved(self, x86):
        b = IRBuilder("f")
        b.block("entry")
        x = b.li(17)
        q = b.div(x, b.imm(5))
        b.ret(q)
        fn = b.done()
        m = Module("t")
        m.add_function(fn)
        ref = Interpreter(m).run("f", []).return_value
        lower_for_target(fn, x86)
        got = Interpreter(m).run("f", []).return_value
        assert ref == got == 3


class TestCopyFold:
    def test_single_use_temp_folded(self):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        x = b.vreg("x")
        t = b.add(n, b.imm(1))
        b.copy_into(x, t)
        b.ret(x)
        fn = b.done()
        assert fold_copies(fn) == 1
        ops = [i.opcode for _, _, i in fn.instructions()]
        assert Opcode.COPY not in ops
        verify_function(fn)

    def test_self_update_folded(self):
        # d = d + 1 via temp: t = add(d, 1); copy d <- t.
        b = IRBuilder("f")
        b.block("entry")
        d = b.li(5, hint="d")
        t = b.add(d, b.imm(1))
        b.copy_into(d, t)
        b.ret(d)
        fn = b.done()
        assert fold_copies(fn) == 1
        m = Module("t")
        m.add_function(fn)
        assert Interpreter(m).run("f", []).return_value == 6

    def test_multi_use_temp_kept(self):
        b = IRBuilder("f")
        b.block("entry")
        a = b.li(3)
        t = b.add(a, b.imm(1))
        x = b.vreg("x")
        b.copy_into(x, t)
        b.ret(b.add(x, t))  # t used twice overall
        fn = b.done()
        assert fold_copies(fn) == 0

    def test_interleaved_def_blocks_fold(self):
        # d touched between def(t) and the copy: unsafe, must keep.
        b = IRBuilder("f")
        b.block("entry")
        d = b.li(1, hint="d")
        t = b.add(d, b.imm(1))  # t = d+1 = 2
        u = b.add(d, b.imm(5))  # reads d between def(t) and copy? no-
        b.copy_into(d, t)
        b.ret(b.add(d, u))
        fn = b.done()
        m = Module("t")
        m.add_function(fn)
        ref = Interpreter(m).run("f", []).return_value
        fold_copies(fn)
        verify_function(fn)
        assert Interpreter(m).run("f", []).return_value == ref == 8

    def test_cross_block_copy_kept(self):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        t = b.add(n, b.imm(1))
        b.jump("next")
        b.block("next")
        x = b.vreg("x")
        b.copy_into(x, t)
        b.ret(x)
        fn = b.done()
        assert fold_copies(fn) == 0

    def test_chain_folds_to_fixpoint(self):
        b = IRBuilder("f")
        b.block("entry")
        a = b.li(1)
        t1 = b.vreg("t1")
        b.copy_into(t1, a)
        t2 = b.vreg("t2")
        b.copy_into(t2, t1)
        b.ret(t2)
        fn = b.done()
        assert fold_copies(fn) == 2
        ops = [i.opcode for _, _, i in fn.instructions()]
        assert ops == [Opcode.LI, Opcode.RET]

    def test_module_semantics_preserved(self):
        from repro.bench.generator import GeneratorConfig, generate_module

        # Generated modules are already folded by compile_program, so
        # fold again and check idempotence + semantics.
        module = generate_module(
            7, GeneratorConfig(n_functions=3, body_statements=(3, 7))
        )
        ref = Interpreter(module).run("main", [3]).return_value
        fold_module(module)
        for fn in module:
            verify_function(fn)
        assert Interpreter(module).run("main", [3]).return_value == ref
