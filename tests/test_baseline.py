"""Tests for the graph-coloring baseline allocator."""

import pytest

from repro.allocation import validate_allocation
from repro.analysis import static_frequencies
from repro.baseline import (
    GraphColoringAllocator,
    fixup_operands,
    insert_spill_code,
)
from repro.ir import (
    Cond,
    I32,
    IRBuilder,
    Module,
    Opcode,
    SlotKind,
    clone_function,
    verify_function,
)
from repro.sim import AllocatedFunction, Interpreter
from repro.target import x86_target


def alloc_and_check(module, fn_name, entry_args, x86):
    fn = module.functions[fn_name]
    alloc = GraphColoringAllocator(x86).allocate(fn)
    assert alloc.succeeded
    validate_allocation(alloc, x86)
    ref = Interpreter(module).run(fn_name, entry_args).return_value
    got = Interpreter(
        module, target=x86,
        allocations={fn_name: AllocatedFunction(
            alloc.function, alloc.assignment
        )},
    ).run(fn_name, entry_args).return_value
    assert got == ref
    return alloc


class TestTwoAddressFixup:
    def test_copy_inserted_for_live_source(self, x86):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        d = b.add(n, b.imm(1))
        b.ret(b.add(d, n))  # n live after first add
        fn = clone_function(b.done())
        fixup_operands(fn, x86)
        verify_function(fn)
        adds = [i for _, _, i in fn.instructions()
                if i.opcode is Opcode.ADD]
        for add in adds:
            assert add.srcs[0] == add.dst  # tied after fixup

    def test_reversed_sub_hazard(self, x86):
        # a = b - a must not clobber a before reading it.
        from repro.ir import Instr

        b = IRBuilder("f")
        b.block("entry")
        a = b.li(10, hint="a")
        bb = b.li(3, hint="b")
        b.emit(Instr(Opcode.SUB, dst=a, srcs=(bb, a)))
        b.ret(a)
        fn = b.done()
        m = Module("t")
        m.add_function(fn)
        ref = Interpreter(m).run("f", []).return_value
        assert ref == -7
        work = clone_function(fn)
        fixup_operands(work, x86)
        verify_function(work)
        m2 = Module("t2")
        m2.add_function(work)
        assert Interpreter(m2).run("f", []).return_value == -7

    def test_division_through_class_temps(self, x86):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        b.ret(b.div(n, b.li(3)))
        fn = clone_function(b.done())
        classes = fixup_operands(fn, x86)
        assert any(
            fams == frozenset({"A"}) for fams in classes.required.values()
        )

    def test_div_with_dst_equal_to_src_constrains_both(self, x86):
        # p = p / q: DIV is NOT two-address, so the coincidental
        # src0 == dst must not skip the family-A rewrite of src0
        # (regression: the dst rule rewrote dst to a fresh temp and
        # left the source use completely unconstrained).
        from repro.ir import Instr

        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        p = b.load(pn)
        q = b.li(3, hint="q")
        b.emit(Instr(Opcode.DIV, dst=p, srcs=(p, q)))
        b.ret(p)
        fn = b.done()
        m = Module("t")
        m.add_function(fn)
        alloc = alloc_and_check(m, "f", [12], x86)
        # Every DIV in the rewritten function has src0 and dst in A.
        for block in alloc.function.blocks:
            for instr in block.instrs:
                if instr.opcode is Opcode.DIV:
                    src0 = alloc.assignment[instr.srcs[0].name]
                    dst = alloc.assignment[instr.dst.name]
                    assert src0.family == "A", src0
                    assert dst.family == "A", dst


class TestSpillEverywhere:
    def test_spill_load_store_counts(self, x86):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        a = b.add(n, b.imm(1), hint="a")
        b.ret(b.add(a, n))
        fn = clone_function(b.done())
        target_reg = next(v for v in fn.vregs() if v.name == "a")
        outcome = insert_spill_code(fn, {target_reg})
        assert outcome.stores == 1
        assert outcome.loads == 1
        verify_function(fn)

    def test_remat_replaces_loads(self, x86):
        b = IRBuilder("f")
        b.block("entry")
        c = b.li(42, hint="c")
        x = b.add(c, b.imm(1))
        b.ret(b.add(x, c))
        fn = clone_function(b.done())
        c_reg = next(v for v in fn.vregs() if v.name == "c")
        outcome = insert_spill_code(fn, {c_reg})
        assert outcome.remats == 2  # two uses
        assert outcome.loads == 0 and outcome.stores == 0
        assert outcome.deleted_defs == 1
        verify_function(fn)
        m = Module("t")
        m.add_function(fn)
        assert Interpreter(m).run("f", []).return_value == 85


class TestEndToEnd:
    def test_loop_sum(self, x86, loop_sum_module):
        alloc = alloc_and_check(loop_sum_module, "sum", [10], x86)
        assert alloc.allocator == "graph-coloring"

    def test_high_pressure_spills(self, x86):
        # 9 simultaneously-live values > 6 registers: must spill.
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        vals = [b.add(n, b.imm(k), hint=f"v{k}") for k in range(9)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        fn = b.done()
        m = Module("t")
        m.add_function(fn)
        alloc = alloc_and_check(m, "f", [100], x86)
        assert alloc.stats.loads + alloc.stats.stores > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_random_modules(self, x86, seed):
        from repro.bench.generator import GeneratorConfig, generate_module

        module = generate_module(
            seed + 500,
            GeneratorConfig(n_functions=2, body_statements=(3, 8)),
        )
        ref = Interpreter(module).run("main", [4]).return_value
        allocs = {}
        for fn in module:
            freq = static_frequencies(fn)
            a = GraphColoringAllocator(x86).allocate(fn, freq)
            assert a.succeeded, fn.name
            validate_allocation(a, x86)
            allocs[fn.name] = AllocatedFunction(a.function, a.assignment)
        got = Interpreter(
            module, target=x86, allocations=allocs
        ).run("main", [4]).return_value
        assert got == ref
