"""Tests for repro.ir.instructions (opcode metadata, operand views)."""

from repro.ir import (
    ALU_OPS,
    DIV_OPS,
    I8,
    I32,
    SHIFT_OPS,
    Address,
    Cond,
    Immediate,
    Instr,
    MemorySlot,
    Opcode,
    SlotKind,
    VirtualRegister,
    opcode_info,
)


def v(name, type_=I32):
    return VirtualRegister(name, type_)


class TestOpcodeInfo:
    def test_two_address_set(self):
        for op in ALU_OPS | SHIFT_OPS | {Opcode.NEG, Opcode.NOT}:
            assert opcode_info(op).two_address, op
        for op in (Opcode.COPY, Opcode.LOAD, Opcode.LI, Opcode.DIV,
                   Opcode.SEXT, Opcode.CALL):
            assert not opcode_info(op).two_address, op

    def test_commutativity(self):
        for op in (Opcode.ADD, Opcode.AND, Opcode.OR, Opcode.XOR,
                   Opcode.IMUL):
            assert opcode_info(op).commutative
        for op in (Opcode.SUB, Opcode.SHL, Opcode.SHR, Opcode.SAR,
                   Opcode.DIV, Opcode.MOD):
            assert not opcode_info(op).commutative

    def test_terminators(self):
        for op in (Opcode.JUMP, Opcode.CJUMP, Opcode.RET):
            assert opcode_info(op).terminator
        assert not opcode_info(op is Opcode.ADD and op or Opcode.ADD).terminator

    def test_remat(self):
        assert opcode_info(Opcode.LI).rematerializable_def
        assert not opcode_info(Opcode.LOAD).rematerializable_def


class TestInstrViews:
    def test_uses_dedup(self):
        a = v("a")
        instr = Instr(Opcode.ADD, dst=v("d"), srcs=(a, a))
        assert instr.uses() == (a,)

    def test_addr_regs_in_uses(self):
        base = v("b")
        idx = v("i")
        addr = Address(base=base, index=idx, scale=4)
        instr = Instr(Opcode.LOAD, dst=v("d"), addr=addr)
        assert set(instr.uses()) == {base, idx}

    def test_address_source_regs_counted(self):
        # Post-RA memory operands: Address in srcs contributes its regs.
        base = v("p")
        slot = MemorySlot("m", I32, SlotKind.SPILL)
        instr = Instr(
            Opcode.ADD, dst=v("d"),
            srcs=(v("a"), Address(slot=slot, base=base)),
        )
        assert base in instr.uses()

    def test_mem_dst_regs_counted(self):
        base = v("p")
        slot = MemorySlot("m", I32, SlotKind.SPILL)
        instr = Instr(
            Opcode.ADD, srcs=(v("a"),),
            mem_dst=Address(slot=slot, base=base),
        )
        assert base in instr.uses()
        assert instr.defs() == ()

    def test_defs(self):
        d = v("d")
        assert Instr(Opcode.LI, dst=d, srcs=(Immediate(1, I32),)).defs() \
            == (d,)
        assert Instr(Opcode.JUMP, targets=("x",)).defs() == ()


class TestTiedCandidates:
    def test_commutative_two_vregs(self):
        instr = Instr(Opcode.ADD, dst=v("d"), srcs=(v("a"), v("b")))
        assert instr.tied_source_candidates() == (0, 1)

    def test_commutative_with_immediate(self):
        instr = Instr(Opcode.ADD, dst=v("d"),
                      srcs=(v("a"), Immediate(1, I32)))
        assert instr.tied_source_candidates() == (0,)
        instr = Instr(Opcode.ADD, dst=v("d"),
                      srcs=(Immediate(1, I32), v("b")))
        assert instr.tied_source_candidates() == (1,)

    def test_noncommutative(self):
        instr = Instr(Opcode.SUB, dst=v("d"), srcs=(v("a"), v("b")))
        assert instr.tied_source_candidates() == (0,)

    def test_shift_ties_value_not_count(self):
        instr = Instr(Opcode.SHL, dst=v("d"), srcs=(v("a"), v("c")))
        assert instr.tied_source_candidates() == (0,)

    def test_non_two_address(self):
        instr = Instr(Opcode.COPY, dst=v("d"), srcs=(v("a"),))
        assert instr.tied_source_candidates() == ()

    def test_all_immediate_candidates_empty(self):
        instr = Instr(Opcode.SUB, dst=v("d"),
                      srcs=(Immediate(5, I32), v("b")))
        assert instr.tied_source_candidates() == ()


class TestStr:
    def test_cjump(self):
        instr = Instr(Opcode.CJUMP, srcs=(v("a"), Immediate(0, I32)),
                      cond=Cond.LT, targets=("t", "f"))
        assert "lt" in str(instr) and "-> t, f" in str(instr)

    def test_call(self):
        instr = Instr(Opcode.CALL, dst=v("r"), srcs=(v("a"),),
                      callee="foo")
        assert "@foo" in str(instr)
