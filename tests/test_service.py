"""Tests for the allocation service (repro.service).

Uses the in-process server form (:class:`ServerThread`) — a real
asyncio TCP server on an ephemeral port, driven over real sockets by
:class:`ServiceClient` — plus one subprocess test for the SIGTERM
drain path of ``python -m repro serve``.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.allocation import render_allocation
from repro.core import AllocatorConfig
from repro.engine import AllocationEngine, EngineConfig
from repro.ir import format_function
from repro.lang import compile_program
from repro.obs import reset_stats, set_stats_enabled
from repro.service import (
    E_BAD_REQUEST,
    E_DRAINING,
    E_OVERLOADED,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.target import x86_target

SOURCE = """
int helper(int a) { return a * 3; }
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i += 1) { s += helper(i); }
    return s;
}
"""

OTHER_SOURCE = """
int twice(int a) { return a + a; }
"""


@pytest.fixture(autouse=True)
def stats():
    set_stats_enabled(True)
    reset_stats()
    yield
    set_stats_enabled(False)
    reset_stats()


@pytest.fixture()
def make_server():
    """Factory for started in-process servers; drains them on exit."""
    handles = []

    def factory(batch_hook=None, **kwargs) -> ServerThread:
        kwargs.setdefault("queue_capacity", 8)
        kwargs.setdefault("max_in_flight", 2)
        config = ServiceConfig(**kwargs)
        handle = ServerThread(config, batch_hook=batch_hook).start()
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        try:
            handle.drain(timeout=60.0)
        except RuntimeError:
            pass


def client_for(handle: ServerThread, **kwargs) -> ServiceClient:
    return ServiceClient("127.0.0.1", handle.port, **kwargs)


def serial_reference(source: str, time_limit: float = 64.0):
    """{function: canonical rendering} from a serial local engine —
    what the `alloc` CLI prints (minus its timing header)."""
    target = x86_target()
    module = compile_program(source, name="request")
    engine = AllocationEngine(
        target,
        AllocatorConfig(time_limit=time_limit),
        EngineConfig(jobs=1, fallback=False),
    )
    return {
        o.function: render_allocation(o.final, target)
        for o in engine.allocate_module(list(module))
    }


class TestProtocolBasics:
    def test_ping_status_stats(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            assert client.ping()["result"]["protocol"] == 1
            status = client.status()["result"]
            assert status["state"] == "serving"
            assert status["queue_capacity"] == 8
            assert status["max_in_flight"] == 2
            stats = client.stats()["result"]
            assert "service.requests" in stats["counters"]
            assert stats["queue"]["depth"] == 0

    def test_unknown_verb(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            resp = client.request({"verb": "frobnicate"})
            assert not resp["ok"]
            assert resp["error"]["code"] == "unknown_verb"

    def test_parse_error(self, make_server):
        handle = make_server()
        with socket.create_connection(
            ("127.0.0.1", handle.port), timeout=30
        ) as sock:
            sock.sendall(b"this is not json\n")
            resp = json.loads(sock.makefile("rb").readline())
            assert not resp["ok"]
            assert resp["error"]["code"] == "parse_error"

    def test_bad_requests(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            for message in (
                {"verb": "allocate"},  # neither source nor ir
                {"verb": "allocate", "source": SOURCE, "ir": "x"},
                {"verb": "allocate", "source": SOURCE,
                 "target": "vax"},
                {"verb": "allocate", "source": SOURCE,
                 "function": "nope"},
                {"verb": "allocate", "source": SOURCE,
                 "config": {"bogus_knob": 1}},
                {"verb": "allocate", "source": SOURCE,
                 "config": {"backend": "not-a-backend"}},
                {"verb": "allocate", "source": SOURCE,
                 "deadline": -1},
                {"verb": "allocate", "source": "int ) broken {"},
            ):
                resp = client.request(message)
                assert not resp["ok"], message
                assert resp["error"]["code"] == E_BAD_REQUEST, message

    def test_trace_id_echo_and_generation(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            resp = client.allocate(
                source=OTHER_SOURCE, trace_id="my-trace"
            )
            assert resp["trace_id"] == "my-trace"
            resp = client.allocate(source=OTHER_SOURCE)
            assert resp["trace_id"].startswith("req-")


class TestAllocate:
    def test_matches_serial_alloc_byte_identical(self, make_server):
        expected = serial_reference(SOURCE)
        handle = make_server()
        with client_for(handle) as client:
            resp = ServiceClient.check(client.allocate(source=SOURCE))
        functions = resp["result"]["functions"]
        assert [f["function"] for f in functions] == \
            list(expected)
        for entry in functions:
            assert entry["source"] == "solver"
            assert entry["status"] == "optimal"
            assert entry["rendered"] == expected[entry["function"]]

    def test_single_function_filter(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            resp = ServiceClient.check(
                client.allocate(source=SOURCE, function="helper")
            )
        functions = resp["result"]["functions"]
        assert [f["function"] for f in functions] == ["helper"]

    def test_ir_text_input(self, make_server):
        module = compile_program(SOURCE, name="request")
        ir_text = "\n".join(format_function(fn) for fn in module)
        handle = make_server()
        with client_for(handle) as client:
            resp = ServiceClient.check(client.allocate(ir=ir_text))
        statuses = {
            f["function"]: f["status"]
            for f in resp["result"]["functions"]
        }
        assert statuses == {"helper": "optimal", "main": "optimal"}

    def test_per_request_config(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            resp = ServiceClient.check(
                client.allocate(
                    source=OTHER_SOURCE,
                    config={"backend": "branch-bound",
                            "size_only": True},
                )
            )
        assert resp["result"]["functions"][0]["status"] == "optimal"

    def test_per_request_presolve_toggle(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            on = ServiceClient.check(
                client.allocate(source=OTHER_SOURCE, report=True)
            )
            off = ServiceClient.check(
                client.allocate(
                    source=OTHER_SOURCE, report=True,
                    config={"presolve": False},
                )
            )
        on_fn = on["result"]["functions"][0]
        off_fn = off["result"]["functions"][0]
        assert on_fn["status"] == off_fn["status"] == "optimal"
        assert on_fn["report"]["solver"]["presolve"] is not None
        assert off_fn["report"]["solver"]["presolve"] is None
        # presolve must not change what the service hands back
        assert on_fn["report"]["solver"]["objective"] == pytest.approx(
            off_fn["report"]["solver"]["objective"]
        )

    def test_report_carries_trace_id(self, make_server):
        handle = make_server()
        with client_for(handle) as client:
            resp = ServiceClient.check(
                client.allocate(
                    source=OTHER_SOURCE, report=True,
                    trace_id="attribute-me",
                )
            )
        entry = resp["result"]["functions"][0]
        assert entry["report"]["trace_id"] == "attribute-me"
        assert entry["report"]["function"] == "twice"
        assert entry["report"]["model"]["n_variables"] > 0


class TestCacheSharing:
    def test_clients_share_cache_hits(self, make_server, tmp_path):
        handle = make_server(cache_dir=str(tmp_path / "cache"))
        with client_for(handle) as first:
            resp = ServiceClient.check(first.allocate(source=SOURCE))
            assert all(
                not f["cache_hit"]
                for f in resp["result"]["functions"]
            )
        with client_for(handle) as second:
            resp = ServiceClient.check(second.allocate(source=SOURCE))
        functions = resp["result"]["functions"]
        assert all(f["cache_hit"] for f in functions)
        assert all(f["source"] == "cache" for f in functions)
        # Cached results render identically to solved ones.
        expected = serial_reference(SOURCE)
        for entry in functions:
            assert entry["rendered"] == expected[entry["function"]]

    def test_identical_requests_in_one_batch_dedupe(
        self, make_server, tmp_path
    ):
        started = threading.Event()
        release = threading.Event()

        def hook(batch):
            # Hold the first (blocker) batch until the two identical
            # requests are queued behind it; with max_in_flight=1 the
            # scheduler then dequeues both into one batch.
            if not started.is_set():
                started.set()
                release.wait(timeout=30)

        handle = make_server(
            batch_hook=hook,
            cache_dir=str(tmp_path / "cache"),
            max_in_flight=1, max_batch=4, queue_capacity=8,
        )

        def submit(results, index, source):
            with client_for(handle) as client:
                results[index] = client.allocate(source=source)

        blocker_results = {}
        blocker = threading.Thread(
            target=submit,
            args=(blocker_results, "blocker", OTHER_SOURCE),
        )
        blocker.start()
        assert started.wait(timeout=30)  # blocker batch is in-flight
        results = {}
        threads = [
            threading.Thread(
                target=submit, args=(results, i, SOURCE)
            )
            for i in range(2)
        ]
        for t in threads:
            t.start()
        # Wait for both twins to be queued before releasing.
        deadline = time.monotonic() + 30
        with client_for(handle) as client:
            while time.monotonic() < deadline:
                if client.status()["result"]["queue_depth"] >= 2:
                    break
                time.sleep(0.01)
        release.set()
        blocker.join(60)
        for t in threads:
            t.join(60)
        assert blocker_results["blocker"]["ok"]
        assert all(results[i]["ok"] for i in range(2))
        hits = [
            f["cache_hit"]
            for r in results.values()
            for f in r["result"]["functions"]
        ]
        # The duplicate request replays the twin's fresh solve.
        assert any(hits)
        renders = [
            tuple(
                f["rendered"] for f in r["result"]["functions"]
            )
            for r in results.values()
        ]
        assert renders[0] == renders[1]


class TestAdmissionControl:
    def test_queue_full_is_rejected_overloaded(self, make_server):
        release = threading.Event()
        handle = make_server(
            batch_hook=lambda batch: release.wait(timeout=30),
            queue_capacity=2, max_in_flight=1, max_batch=1,
        )
        results = {}

        def submit(index):
            with client_for(handle) as client:
                results[index] = client.allocate(source=OTHER_SOURCE)

        threads = []

        def spawn(index):
            t = threading.Thread(target=submit, args=(index,))
            t.start()
            threads.append(t)

        # One request occupies the solver; wait until it is in flight.
        spawn(0)
        with client_for(handle) as client:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.status()["result"]["in_flight"] >= 1:
                    break
                time.sleep(0.01)
            # Fill the queue (capacity 2).
            spawn(1)
            spawn(2)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.status()["result"]["queue_depth"] >= 2:
                    break
                time.sleep(0.01)
            # The queue is full: the next request must be rejected.
            rejected = client.allocate(source=OTHER_SOURCE)
        assert not rejected["ok"]
        assert rejected["error"]["code"] == E_OVERLOADED
        release.set()
        for t in threads:
            t.join(60)
        assert all(results[i]["ok"] for i in range(3))

    def test_deadline_expired_falls_back_to_baseline(
        self, make_server
    ):
        handle = make_server(
            batch_hook=lambda batch: time.sleep(0.1),
        )
        with client_for(handle) as client:
            resp = ServiceClient.check(
                client.allocate(source=OTHER_SOURCE, deadline=0.01)
            )
        result = resp["result"]
        assert result["deadline_expired"] is True
        entry = result["functions"][0]
        assert entry["source"] == "fallback"
        assert entry["timed_out"] is True
        assert entry["status"] == "feasible"
        assert entry["allocator"] == "graph-coloring"
        assert "rendered" in entry  # the baseline result is usable


class TestBurstAndDrain:
    """The acceptance scenario: queue capacity 4, 16 concurrent
    allocates, drain mid-burst — every request terminal, accepted
    results byte-identical to serial alloc, nothing dropped."""

    def run_burst(self, handle, n=16, source=SOURCE):
        results: dict[int, dict] = {}
        errors: dict[int, Exception] = {}

        def submit(index):
            try:
                with client_for(handle) as client:
                    results[index] = client.allocate(source=source)
            except Exception as exc:
                errors[index] = exc

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(n)
        ]
        for t in threads:
            t.start()
        return threads, results, errors

    def test_burst_every_request_terminal(self, make_server, tmp_path):
        handle = make_server(
            batch_hook=lambda batch: time.sleep(0.15),
            queue_capacity=4, max_in_flight=2, max_batch=2,
            cache_dir=str(tmp_path / "cache"),
        )
        threads, results, errors = self.run_burst(handle, n=16)
        for t in threads:
            t.join(120)
        assert not errors
        assert len(results) == 16
        expected = serial_reference(SOURCE)
        accepted = rejected = 0
        for resp in results.values():
            if resp["ok"]:
                accepted += 1
                for entry in resp["result"]["functions"]:
                    assert entry["rendered"] == \
                        expected[entry["function"]]
            else:
                rejected += 1
                assert resp["error"]["code"] == E_OVERLOADED
        assert accepted >= 1
        assert rejected >= 1  # capacity 4+2 cannot absorb 16 at once
        assert accepted + rejected == 16

    def test_drain_mid_burst_drops_nothing(self, make_server):
        handle = make_server(
            batch_hook=lambda batch: time.sleep(0.1),
            queue_capacity=8, max_in_flight=2, max_batch=2,
        )
        threads, results, errors = self.run_burst(handle, n=6)
        # Wait until the whole burst is admitted (so no thread is
        # still connecting when the listener closes), then drain —
        # most of the queue is still unsolved at this point.
        with client_for(handle) as client:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status = client.status()["result"]
                if status["requests"]["admitted"] >= 6:
                    break
                time.sleep(0.01)
            drained = client.drain()
        assert drained["ok"]
        assert drained["result"]["state"] == "drained"
        for t in threads:
            t.join(120)
        handle.join(60)
        assert not errors
        terminal_ok = sum(1 for r in results.values() if r["ok"])
        late = [
            r for r in results.values()
            if not r["ok"]
            and r["error"]["code"] not in (E_OVERLOADED, E_DRAINING)
        ]
        assert not late  # only terminal outcomes, nothing dropped
        # Every accepted request was answered with a result.
        assert terminal_ok == drained["result"]["completed"]
        # After drain the server is gone.
        with pytest.raises(OSError):
            socket.create_connection(
                ("127.0.0.1", handle.port), timeout=2
            )

    def test_stats_verb_reports_queue_and_engine(
        self, make_server, tmp_path
    ):
        handle = make_server(cache_dir=str(tmp_path / "cache"))
        with client_for(handle) as client:
            ServiceClient.check(client.allocate(source=OTHER_SOURCE))
            ServiceClient.check(client.allocate(source=OTHER_SOURCE))
            stats = client.stats()["result"]
        counters = stats["counters"]
        assert counters["service.requests"] == 2
        assert counters["service.completed"] == 2
        assert counters["engine.cache_hits"] >= 1
        assert stats["queue"]["capacity"] == 8
        assert stats["queue"]["avg_queue_seconds"] >= 0.0
        assert stats["cache"]["entries"] == 1


class TestServeCLISigterm:
    def test_sigterm_drains_gracefully(self):
        root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--queue-capacity", "8", "--max-in-flight", "2"],
            cwd=root,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            port = int(
                banner.split("listening on ")[1]
                .split()[0].rsplit(":", 1)[1]
            )
            results = {}

            def submit(index):
                try:
                    with ServiceClient(
                        "127.0.0.1", port, timeout=120,
                    ) as client:
                        results[index] = client.allocate(
                            source=SOURCE
                        )
                except Exception as exc:
                    results[index] = exc

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(6)
            ]
            for t in threads:
                t.start()
            time.sleep(0.2)  # let the burst land, then SIGTERM
            proc.send_signal(signal.SIGTERM)
            for t in threads:
                t.join(120)
            assert proc.wait(timeout=120) == 0
            # Every admitted request still got its full result.
            oks = [
                r for r in results.values()
                if isinstance(r, dict) and r.get("ok")
            ]
            assert oks, results
            for resp in oks:
                statuses = [
                    f["status"]
                    for f in resp["result"]["functions"]
                ]
                assert statuses == ["optimal", "optimal"]
            for r in results.values():
                if isinstance(r, dict) and not r.get("ok"):
                    assert r["error"]["code"] in (
                        E_OVERLOADED, E_DRAINING,
                    )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
