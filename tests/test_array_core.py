"""Array-native model core: round-trips, pipeline parity, warm starts.

Covers the CSR matrix bridge (:class:`repro.solver.MatrixModel`), the
vectorized presolve pipeline's exact agreement with the object
pipeline, the structural fingerprint's cost-invariance, and the
warm-start store's node-count and validity guarantees.
"""

import random

import pytest

from repro.allocation import validate_allocation
from repro.bench import scaling_functions
from repro.core import AllocatorConfig, IPAllocator
from repro.presolve import PresolveConfig, presolve_model
from repro.solver import (
    InfeasibleModel,
    IPModel,
    MatrixModel,
    Sense,
    solve,
    solve_with_branch_bound,
    structural_fingerprint,
    warm_start_store,
)
from repro.target import x86_target

BACKENDS = ("scipy", "branch-bound", "brute-force")


def random_model(seed, n_max=12, fix_some=True):
    """Random 0-1 IP with mixed senses, coefficients, and fixings.

    Returns ``None`` when the draw is infeasible at build time (a
    fixed variable can make a later constraint unsatisfiable).
    """
    rng = random.Random(seed)
    m = IPModel(f"arr{seed}")
    n = rng.randint(2, n_max)
    xs = [
        m.add_var(f"x{i}", float(rng.randint(-5, 5)))
        for i in range(n)
    ]
    if fix_some and rng.random() < 0.5:
        m.fix(rng.choice(xs), rng.randint(0, 1))
    senses = [Sense.LE, Sense.GE, Sense.EQ]
    try:
        for c in range(rng.randint(1, 8)):
            k = rng.randint(1, min(4, n))
            terms = [
                (float(rng.choice([-2, -1, 1, 1, 2])), v)
                for v in rng.sample(xs, k)
            ]
            m.add_constraint(
                terms, rng.choice(senses), float(rng.randint(-1, k)),
                name=f"c{c}",
            )
    except InfeasibleModel:
        return None
    return m


def constraint_key(con):
    """Order-insensitive identity of one constraint.

    Coefficients are summed per variable: the CSR bridge collapses
    duplicate terms (``sum_duplicates``), which preserves the row's
    meaning exactly.
    """
    acc: dict[str, float] = {}
    for c, v in con.terms:
        acc[v.name] = acc.get(v.name, 0.0) + c
    return (frozenset(acc.items()), con.sense, con.rhs)


def assert_models_equal(a: IPModel, b: IPModel):
    assert [v.name for v in a.variables] == [
        v.name for v in b.variables
    ]
    assert [v.cost for v in a.variables] == [
        v.cost for v in b.variables
    ]
    assert [v.fixed for v in a.variables] == [
        v.fixed for v in b.variables
    ]
    assert a.objective_constant == pytest.approx(b.objective_constant)
    assert len(a.constraints) == len(b.constraints)
    for ca, cb in zip(a.constraints, b.constraints):
        assert constraint_key(ca) == constraint_key(cb), (
            f"{a.name}: {ca} != {cb}"
        )


def fig_models(seeds=range(1), sizes=(1, 3)):
    allocator = IPAllocator(x86_target())
    for _, fn in scaling_functions(seeds=seeds, sizes=list(sizes)):
        _, model, _, _ = allocator.build_model(fn)
        yield model


# -- satellite: evaluate bounds checking -------------------------------


def test_evaluate_rejects_out_of_range_index():
    m = IPModel("tiny")
    m.add_var("a", 1.0)
    m.add_var("b", 2.0)
    with pytest.raises(IndexError, match="model tiny"):
        m.evaluate({0: 1, 7: 1})
    with pytest.raises(IndexError, match="tiny"):
        m.evaluate({-1: 0})
    assert m.evaluate({0: 1, 1: 0}) == pytest.approx(1.0)


# -- matrix bridge round-trips -----------------------------------------


def test_matrix_roundtrip_random_models():
    checked = 0
    for seed in range(40):
        model = random_model(seed)
        if model is None:
            continue
        back = MatrixModel.from_ip(model).to_ip()
        assert_models_equal(model, back)
        checked += 1
    assert checked > 20


def test_matrix_roundtrip_fig_models():
    checked = 0
    for model in fig_models():
        back = MatrixModel.from_ip(model).to_ip()
        assert_models_equal(model, back)
        checked += 1
    assert checked, "no allocation models reached the bridge"


def test_matrix_evaluate_matches_model():
    for seed in range(20):
        model = random_model(seed)
        if model is None:
            continue
        matrix = model.matrix()
        free = model.free_variables()
        rng = random.Random(seed * 31 + 7)
        for _ in range(5):
            bits = [rng.randint(0, 1) for _ in free]
            values = {v.index: b for v, b in zip(free, bits)}
            for v in model.variables:
                if v.fixed is not None:
                    values[v.index] = v.fixed
            assert matrix.evaluate_free(bits) == pytest.approx(
                model.evaluate(values)
            )
            assert matrix.check_free(bits) == model.check(values)


# -- structural fingerprint --------------------------------------------


def test_fingerprint_ignores_costs_only():
    base = random_model(5, fix_some=False)
    fp = structural_fingerprint(base.matrix())

    perturbed = random_model(5, fix_some=False)
    for v in perturbed.variables:
        v.cost *= 1.1
    perturbed.objective_constant += 3.0
    assert structural_fingerprint(perturbed.matrix()) == fp

    widened = random_model(5, fix_some=False)
    widened.constraints[0].rhs += 1.0
    # rebuild: rhs mutation bypasses the cache invalidation hooks
    assert structural_fingerprint(
        MatrixModel.from_ip(widened)
    ) != fp


# -- object vs array presolve parity -----------------------------------


def submodel_keys(reduction):
    out = []
    for sub in reduction.submodels:
        m = sub.model
        out.append((
            tuple(sorted(sub.var_map)),
            frozenset(constraint_key(c) for c in m.constraints),
            tuple(v.cost for v in m.variables),
        ))
    return out


def assert_pipelines_agree(model):
    obj_red = presolve_model(
        model, PresolveConfig(array_core=False)
    )
    arr_red = presolve_model(
        model, PresolveConfig(array_core=True)
    )
    assert obj_red.infeasible == arr_red.infeasible
    if obj_red.infeasible:
        # Both pipelines prove infeasibility, but may abort at
        # different points of the sweep; intermediate counters are
        # not comparable on that path.
        return
    assert obj_red.fixed == arr_red.fixed
    s_obj, s_arr = obj_red.summary, arr_red.summary
    for field in ("pre_variables", "pre_constraints", "post_variables",
                  "post_constraints", "vars_fixed", "cols_merged",
                  "cons_dropped", "components", "rounds"):
        assert getattr(s_obj, field) == getattr(s_arr, field), (
            f"{model.name}: presolve diverged on {field}: "
            f"{getattr(s_obj, field)} != {getattr(s_arr, field)}"
        )
    assert submodel_keys(obj_red) == submodel_keys(arr_red)


def test_presolve_pipelines_identical_random():
    for seed in range(60):
        model = random_model(seed)
        if model is not None:
            assert_pipelines_agree(model)


def test_presolve_pipelines_identical_fig():
    checked = 0
    for model in fig_models():
        assert_pipelines_agree(model)
        checked += 1
    assert checked


@pytest.mark.parametrize("backend", BACKENDS)
def test_solve_parity_across_pipelines(backend):
    for seed in range(25):
        model = random_model(seed, n_max=10)
        if model is None:
            continue
        obj = solve(
            model, backend=backend,
            presolve=PresolveConfig(array_core=False),
        )
        arr = solve(
            model, backend=backend,
            presolve=PresolveConfig(array_core=True),
        )
        assert obj.status == arr.status, (
            f"{model.name}/{backend}: array core changed status"
        )
        if obj.status.has_solution:
            assert obj.objective == pytest.approx(
                arr.objective, abs=1e-6
            )
            assert model.check(arr.values)


# -- warm starts -------------------------------------------------------


def cover_model(seed, n=18, m_rows=24, perturb=1.0):
    """Random covering IP: heterogeneous costs, GE rows of 2-4 vars.

    Large enough that branch-and-bound wanders before proving the
    optimum, so a warm incumbent has real pruning power.
    """
    rng = random.Random(seed)
    m = IPModel(f"cover{seed}")
    xs = [
        m.add_var(f"x{i}", (1.0 + rng.random()) * perturb)
        for i in range(n)
    ]
    for c in range(m_rows):
        vars_ = rng.sample(xs, rng.randint(2, 4))
        m.add_constraint(
            [(1.0, v) for v in vars_], Sense.GE, 1.0, name=f"c{c}"
        )
    return m


def test_warm_start_strictly_fewer_nodes():
    """A cost-perturbed repeat solves in strictly fewer B&B nodes."""
    store = warm_start_store()
    store.clear()

    # Cold control: the perturbed model with an empty store.
    cold = solve(
        cover_model(9, perturb=1.1), backend="branch-bound",
        presolve=False,
    )
    assert cold.status.has_solution

    store.clear()
    first = solve(
        cover_model(9), backend="branch-bound", presolve=False
    )
    assert first.status.has_solution
    assert len(store) == 1, "solution was not stored"

    warm = solve(
        cover_model(9, perturb=1.1), backend="branch-bound",
        presolve=False,
    )
    assert warm.status == cold.status
    assert warm.objective == pytest.approx(cold.objective, abs=1e-6)
    assert warm.nodes < cold.nodes, (
        f"warm start did not prune: {warm.nodes} vs cold {cold.nodes}"
    )
    store.clear()


def test_warm_start_rejects_stale_seed():
    """A fingerprint collision with unknown names must be dropped."""
    model = cover_model(7, n=8, m_rows=6)
    fp = structural_fingerprint(model.matrix())
    store = warm_start_store()
    store.clear()
    store.store(fp, {"nonexistent": 1})
    res = solve_with_branch_bound(
        model, warm_start=store.lookup(fp)
    )
    assert res.status.has_solution
    assert model.check(res.values)
    store.clear()


def test_warm_start_store_is_lru():
    store = warm_start_store()
    store.clear()
    for i in range(300):
        store.store(f"fp{i}", {"x": i})
    assert len(store) == 256
    assert store.lookup("fp0") is None
    assert store.lookup("fp299") == {"x": 299}
    store.clear()


def test_warm_allocator_resolve_is_valid_and_optimal():
    """Allocator-level: a repeat allocation under a warm store stays
    validator-clean with an identical optimal objective."""
    target = x86_target()
    config = AllocatorConfig(backend="branch-bound", validate=False)
    allocator = IPAllocator(target, config)
    fn = next(
        fn for _, fn in scaling_functions(seeds=range(1), sizes=[2])
    )

    store = warm_start_store()
    store.clear()
    cold = allocator.allocate(fn)
    assert cold.succeeded
    warm = allocator.allocate(fn)
    assert warm.succeeded
    assert warm.status == cold.status
    assert warm.objective == pytest.approx(cold.objective, abs=1e-6)
    validate_allocation(warm, target)
    store.clear()


def test_build_seconds_reported():
    """Every backend reports the matrix assembly time it paid."""
    model = cover_model(1, n=10, m_rows=8)
    res = solve(model, backend="scipy", presolve=True)
    assert res.build_seconds >= 0.0
    assert res.solve_seconds >= res.build_seconds
