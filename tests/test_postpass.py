"""Tests for merge-based no-op copy deletion."""

from repro.ir import (
    Cond,
    I32,
    IRBuilder,
    Module,
    Opcode,
    SlotKind,
)
from repro.postpass import merge_noop_copies
from repro.sim import Interpreter
from repro.target import x86_target

RF = x86_target().register_file


def count_copies(fn):
    return sum(
        1 for _, _, i in fn.instructions() if i.opcode is Opcode.COPY
    )


class TestMergeNoopCopies:
    def test_same_register_copy_deleted(self):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        x = b.vreg("x")
        b.copy_into(x, n)
        b.ret(b.add(x, b.imm(1)))
        fn = b.done()
        assignment = {"t": RF["EAX"], "x": RF["EAX"], "t.1": RF["EAX"]}
        deleted = merge_noop_copies(fn, assignment)
        assert deleted == 1
        assert count_copies(fn) == 0
        # uses of x now reference n's vreg
        names = {v.name for v in fn.vregs()}
        assert "x" not in names

    def test_different_register_copy_kept(self):
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        x = b.vreg("x")
        b.copy_into(x, n)
        b.ret(b.add(x, b.imm(1)))
        fn = b.done()
        assignment = {"t": RF["EAX"], "x": RF["EBX"], "t.1": RF["EBX"]}
        assert merge_noop_copies(fn, assignment) == 0
        assert count_copies(fn) == 1

    def test_loop_carried_merge(self):
        # The multi-def case: i and its update temp share a register.
        b = IRBuilder("f")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        i = b.li(0, hint="i")
        b.jump("head")
        b.block("head")
        b.cjump(Cond.LT, i, n, "body", "exit")
        b.block("body")
        t = b.add(i, b.imm(1))
        b.copy_into(i, t)
        b.jump("head")
        b.block("exit")
        b.ret(i)
        fn = b.done()
        m = Module("t")
        m.add_function(fn)
        ref = Interpreter(m).run("f", [5]).return_value
        assignment = {
            "t": RF["EBX"], "i": RF["ESI"], "t.1": RF["ESI"],
        }
        assert merge_noop_copies(fn, assignment) == 1
        assert count_copies(fn) == 0
        # Semantics preserved (run symbolically after the merge).
        assert Interpreter(m).run("f", [5]).return_value == ref

    def test_chained_copies(self):
        b = IRBuilder("f")
        b.block("entry")
        a = b.li(7, hint="a")
        x = b.vreg("x")
        b.copy_into(x, a)
        y = b.vreg("y")
        b.copy_into(y, x)
        b.ret(y)
        fn = b.done()
        assignment = {
            "a": RF["EAX"], "x": RF["EAX"], "y": RF["EAX"],
        }
        assert merge_noop_copies(fn, assignment) == 2
        assert count_copies(fn) == 0
        m = Module("t")
        m.add_function(fn)
        assert Interpreter(m).run("f", []).return_value == 7

    def test_self_copy_deleted_without_union(self):
        b = IRBuilder("f")
        b.block("entry")
        a = b.li(7, hint="a")
        b.copy_into(a, a)
        b.ret(a)
        fn = b.done()
        assert merge_noop_copies(fn, {"a": RF["EAX"]}) == 1
