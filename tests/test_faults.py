"""Chaos suite: the fault-injection harness and every recovery path.

Each injection site is driven end to end through its real layer — a
worker crash actually kills a pool process, a corrupt cache record is
actually quarantined from disk, a garbled service line is answered on
a live socket — and every test asserts both the survival behaviour
(the run completes, the connection stays up) and the accounting
(``faults.*`` / ``resilience.*`` counters).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.allocation import render_allocation
from repro.core import AllocatorConfig
from repro.engine import AllocationEngine, EngineConfig, ResultCache
from repro.faults import (
    SITE_CACHE_CORRUPT,
    SITE_WORKER_CRASH,
    SITES,
    CircuitBreaker,
    CircuitOpenError,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    breaker_for,
    get_injector,
    reset_breakers,
    set_injector,
)
from repro.lang import compile_program
from repro.obs import reset_stats, set_stats_enabled, snapshot
from repro.service import (
    E_CANCELLED,
    E_TOO_LARGE,
    ServerThread,
    ServiceClient,
    ServiceConfig,
)
from repro.solver import IPModel, Sense, SolveStatus, solve
from repro.target import x86_target

from tests.conftest import build_loop_sum


@pytest.fixture(autouse=True)
def clean_slate():
    """Stats on, no fault plan, no breaker state — per test."""
    set_stats_enabled(True)
    reset_stats()
    set_injector(None)
    reset_breakers()
    yield
    set_injector(None)
    reset_breakers()
    set_stats_enabled(False)
    reset_stats()


def small_model() -> IPModel:
    model = IPModel()
    x = model.add_var("x", -1.0)
    y = model.add_var("y", -1.0)
    model.add_constraint([(1.0, x), (1.0, y)], Sense.LE, 1.0, "pick")
    return model


# -- the plan: grammar and determinism ------------------------------------

class TestFaultPlan:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "seed=7;worker_crash=0.25;cache_corrupt=1.0:2;"
            "hang_seconds=0.5"
        )
        assert plan.seed == 7
        assert plan.hang_seconds == 0.5
        assert plan.rule("worker_crash").rate == 0.25
        assert plan.rule("cache_corrupt").max_fires == 2
        assert bool(plan)

    def test_empty_spec_is_inert(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("seed=9")

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.parse("warp_core_breach=0.5")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("worker_crash=maybe")

    def test_decisions_are_deterministic(self):
        plan = FaultPlan.parse("seed=7;worker_crash=0.25")
        again = FaultPlan.parse("seed=7;worker_crash=0.25")
        keys = [f"fn-{i}" for i in range(200)]
        first = [plan.decide(SITE_WORKER_CRASH, k) for k in keys]
        second = [again.decide(SITE_WORKER_CRASH, k) for k in keys]
        assert first == second
        hits = sum(first)
        assert 0 < hits < len(keys)  # the rate is neither 0 nor 1

    def test_seed_changes_decisions(self):
        a = FaultPlan.parse("seed=1;worker_crash=0.5")
        b = FaultPlan.parse("seed=2;worker_crash=0.5")
        keys = [f"fn-{i}" for i in range(64)]
        assert [a.decide(SITE_WORKER_CRASH, k) for k in keys] != \
               [b.decide(SITE_WORKER_CRASH, k) for k in keys]

    def test_rate_extremes(self):
        plan = FaultPlan.parse("worker_crash=1.0;cache_corrupt=0.0")
        assert plan.decide(SITE_WORKER_CRASH, "anything")
        assert not plan.decide(SITE_CACHE_CORRUPT, "anything")

    def test_max_fires_budget(self):
        inj = set_injector("cache_corrupt=1.0:2")
        fires = [
            inj.should_fire(SITE_CACHE_CORRUPT, f"k{i}")
            for i in range(4)
        ]
        assert fires == [True, True, False, False]
        assert snapshot().get("faults.cache_corrupt") == 2

    def test_every_site_has_a_name(self):
        spec = ";".join(f"{site}=0.5" for site in SITES)
        plan = FaultPlan.parse(spec)
        for site in SITES:
            assert plan.rule(site).rate == 0.5


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            max_retries=5, base_delay=0.1, max_delay=0.5, jitter=0.0
        )
        delays = [policy.delay(a, salt="s") for a in range(5)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.1)
        assert max(delays) <= 0.5

    def test_jitter_is_deterministic_per_salt(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        assert policy.delay(1, salt="a") == policy.delay(1, salt="a")
        assert policy.delay(1, salt="a") != policy.delay(1, salt="b")

    def test_sleep_counts_resilience(self):
        policy = RetryPolicy(base_delay=0.001, max_delay=0.002)
        policy.sleep(0, salt="x")
        counters = snapshot()
        assert counters.get("resilience.retries") == 1
        assert counters.get("resilience.backoff_seconds", 0) > 0


# -- circuit breaker ------------------------------------------------------

class TestCircuitBreaker:
    def test_trips_after_threshold_and_recovers(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            "unit", failure_threshold=3, reset_timeout=10.0,
            clock=lambda: clock[0],
        )
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()  # third consecutive failure trips it
        assert breaker.state == "open"
        assert not breaker.allow()
        clock[0] = 11.0  # past the reset timeout: half-open
        assert breaker.state == "half-open"
        assert breaker.allow()       # one probe admitted
        assert not breaker.allow()   # but only one
        breaker.record_success()
        assert breaker.state == "closed"
        assert snapshot().get("resilience.breaker_trips") == 1
        assert snapshot().get("resilience.breaker_closes") == 1

    def test_failed_probe_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            "unit", failure_threshold=1, reset_timeout=5.0,
            clock=lambda: clock[0],
        )
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed: open again
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker("unit", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two consecutive

    def test_solver_dispatch_trips_and_short_circuits(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "2")
        set_injector("solver_error=1.0")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                solve(small_model(), backend="scipy")
        with pytest.raises(CircuitOpenError):
            solve(small_model(), backend="scipy")
        counters = snapshot()
        assert counters.get("resilience.breaker_trips") == 1
        assert counters.get("resilience.breaker_short_circuits") == 1
        # Clear the fault and let the reset window lapse: the
        # half-open probe solves cleanly and closes the breaker.
        set_injector(None)
        breaker_for("scipy").reset_timeout = 0.0
        result = solve(small_model(), backend="scipy")
        assert result.status == SolveStatus.OPTIMAL
        assert breaker_for("scipy").state == "closed"

    def test_injected_solver_timeout(self):
        set_injector("solver_timeout=1.0")
        result = solve(small_model(), backend="scipy", time_limit=3.0)
        assert result.status == SolveStatus.UNSOLVED
        assert result.timed_out
        assert snapshot().get("faults.solver_timeout") == 1
        # A timeout is not a backend fault: the breaker stays closed.
        assert breaker_for("scipy").state == "closed"


# -- engine: crash retry, recovery, degradation ---------------------------

class TestEngineChaos:
    def engine(self, tmp_path=None, jobs=2, retries=3):
        return AllocationEngine(
            x86_target(),
            AllocatorConfig(time_limit=30.0),
            EngineConfig(
                jobs=jobs,
                retries=retries,
                cache_dir=str(tmp_path) if tmp_path else None,
            ),
        )

    def test_worker_crash_retries_then_counted_degradation(self):
        """Every worker's first solve dies; retries burn down; the
        in-process final attempt recovers all but the one function
        whose own fault decision still fires."""
        module = build_loop_sum()
        clean = {
            o.function: render_allocation(o.final, x86_target())
            for o in self.engine().allocate_module(list(module))
        }
        reset_stats()
        set_injector("worker_crash=1.0:1")
        outcomes = {
            o.function: o
            for o in self.engine().allocate_module(list(module))
        }
        assert set(outcomes) == set(clean)  # nothing dropped
        counters = snapshot()
        assert counters.get("resilience.worker_crashes", 0) >= 1
        assert counters.get("resilience.pool_respawns", 0) >= 1
        assert counters.get("resilience.retries", 0) >= 1
        # The parent-process injector budget (1 fire) degrades exactly
        # one function at the final attempt; the rest recover to the
        # clean run's allocation, byte for byte.
        assert counters.get("engine.degradations.InjectedFault") == 1
        recovered = [
            name for name, o in outcomes.items()
            if o.final.allocator == "ip"
        ]
        assert len(recovered) == len(clean) - 1
        for name in recovered:
            assert render_allocation(
                outcomes[name].final, x86_target()
            ) == clean[name]

    def test_moderate_crash_rate_is_bit_identical(self):
        """A rate-based plan whose fires all land within the retry
        budget reproduces the clean allocations exactly."""
        module = build_loop_sum()
        clean = {
            o.function: render_allocation(o.final, x86_target())
            for o in self.engine().allocate_module(list(module))
        }
        reset_stats()
        set_injector("seed=3;worker_crash=0.25")
        faulted = {
            o.function: render_allocation(o.final, x86_target())
            for o in self.engine().allocate_module(list(module))
        }
        assert faulted == clean

    def test_worker_hang_site_fires_and_run_completes(self):
        set_injector("worker_hang=1.0:1;hang_seconds=0.1")
        module = build_loop_sum()
        outcomes = list(self.engine().allocate_module(list(module)))
        assert len(outcomes) == len(list(module))
        assert all(o.final.succeeded for o in outcomes)
        assert snapshot().get("faults.worker_hang", 0) >= 1

    def test_cache_corruption_quarantines_and_recovers(self, tmp_path):
        module = build_loop_sum()
        # Warm the cache cleanly, then read it back under a plan that
        # garbles the first record read.
        list(self.engine(tmp_path, jobs=1).allocate_module(list(module)))
        cache = ResultCache(str(tmp_path))
        assert len(cache) == len(list(module))
        reset_stats()
        set_injector("cache_corrupt=1.0:1")
        outcomes = list(
            self.engine(tmp_path, jobs=1).allocate_module(list(module))
        )
        assert all(o.final.succeeded for o in outcomes)
        counters = snapshot()
        assert counters.get("faults.cache_corrupt") == 1
        assert counters.get("engine.cache_corrupt") == 1
        quarantined = list((tmp_path / "quarantine").glob("*.bad"))
        assert len(quarantined) == 1

    def test_cache_io_faults_are_misses_not_errors(self, tmp_path):
        set_injector("cache_io=1.0")
        module = build_loop_sum()
        outcomes = list(
            self.engine(tmp_path, jobs=1).allocate_module(list(module))
        )
        assert all(o.final.succeeded for o in outcomes)
        assert snapshot().get("faults.cache_io", 0) >= 1
        # Every write was eaten by the injected I/O error.
        assert len(ResultCache(str(tmp_path))) == 0

    def test_strict_mode_reraises_unexpected(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT", "1")

        class Boom(Exception):
            pass

        engine = self.engine(jobs=1)

        def explode(*a, **k):
            raise Boom("not a degradable failure")

        monkeypatch.setattr(
            "repro.engine.engine._run_pipeline", explode
        )
        with pytest.raises(Boom):
            list(engine.allocate_module(list(build_loop_sum())))


# -- service hardening ----------------------------------------------------

SOURCE = "int f(int n) { return n + 1; }"


@pytest.fixture()
def make_server():
    handles = []

    def factory(batch_hook=None, **kwargs) -> ServerThread:
        kwargs.setdefault("queue_capacity", 8)
        kwargs.setdefault("max_in_flight", 2)
        config = ServiceConfig(**kwargs)
        handle = ServerThread(config, batch_hook=batch_hook).start()
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        try:
            handle.drain(timeout=60.0)
        except RuntimeError:
            pass


def client_for(handle: ServerThread, **kwargs) -> ServiceClient:
    return ServiceClient("127.0.0.1", handle.port, **kwargs)


class TestServiceChaos:
    def test_oversized_request_gets_too_large(self, make_server):
        handle = make_server(max_request_bytes=2000)
        with client_for(handle) as client:
            resp = client.allocate(source=SOURCE + " // " + "x" * 3000)
            assert resp["ok"] is False
            assert resp["error"]["code"] == E_TOO_LARGE
            # The connection survives an oversized line.
            assert client.ping()["ok"]

    def test_tenant_budget_is_enforced(self, make_server):
        handle = make_server(tenant_limits={"small": 200})
        with client_for(handle) as client:
            big = SOURCE + " // " + "y" * 400
            resp = client.allocate(source=big, tenant="small")
            assert resp["error"]["code"] == E_TOO_LARGE
            assert "small" in resp["error"]["message"]
            # The same payload is fine for an unlimited tenant.
            assert client.allocate(source=big, tenant="other")["ok"]

    def test_injected_malformed_line_is_answered(self, make_server):
        handle = make_server(faults="service_malformed=1.0:1")
        with client_for(handle) as client:
            first = client.allocate(source=SOURCE)
            assert first["ok"] is False  # garbled in flight
            assert first["error"]["code"] in ("parse_error",
                                              "bad_request")
            second = client.allocate(source=SOURCE)
            assert second["ok"] is True  # budget spent; line intact

    def test_cancel_queued_request(self, make_server):
        release = threading.Event()
        entered = threading.Event()

        def hook(batch):
            entered.set()
            release.wait(timeout=30.0)

        handle = make_server(
            batch_hook=hook, max_in_flight=1, max_batch=1
        )
        results = {}

        def submit(tag):
            with client_for(handle) as client:
                results[tag] = client.allocate(
                    source=SOURCE, trace_id=tag
                )

        first = threading.Thread(target=submit, args=("first",))
        first.start()
        assert entered.wait(timeout=30.0)
        second = threading.Thread(target=submit, args=("second",))
        second.start()
        with client_for(handle) as control:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                cancel = control.cancel("second")
                if cancel["result"]["cancelled"]:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("never saw the queued request to cancel")
            # A second cancel for the same ref finds nothing.
            assert control.cancel("second")["result"]["cancelled"] \
                is False
        release.set()
        first.join(timeout=60.0)
        second.join(timeout=60.0)
        assert results["first"]["ok"] is True
        assert results["second"]["ok"] is False
        assert results["second"]["error"]["code"] == E_CANCELLED

    def test_round_robin_across_tenants(self, make_server):
        """A burst from one tenant cannot starve another: the queue
        drains one request per tenant per turn."""
        release = threading.Event()
        entered = threading.Event()
        order = []

        def hook(batch):
            for pending in batch:
                order.append(pending.request.trace_id)
            if not entered.is_set():
                entered.set()
                release.wait(timeout=30.0)

        handle = make_server(
            batch_hook=hook, max_in_flight=1, max_batch=1
        )
        threads = []

        def submit(tag, tenant):
            with client_for(handle) as client:
                client.allocate(
                    source=SOURCE, trace_id=tag, tenant=tenant
                )

        def spawn(tag, tenant):
            t = threading.Thread(target=submit, args=(tag, tenant))
            t.start()
            threads.append(t)

        spawn("a1", "alpha")
        assert entered.wait(timeout=30.0)  # a1 holds the engine
        # Queue a burst from alpha, then one request each from beta
        # and gamma behind it.
        for tag in ("a2", "a3", "a4"):
            spawn(tag, "alpha")
            time.sleep(0.05)
        spawn("b1", "beta")
        time.sleep(0.05)
        spawn("c1", "gamma")
        time.sleep(0.2)  # let everything enqueue
        release.set()
        for t in threads:
            t.join(timeout=60.0)
        assert sorted(order) == ["a1", "a2", "a3", "a4", "b1", "c1"]
        # Fairness: beta's and gamma's single requests are served
        # before alpha's burst finishes.
        assert order.index("b1") < order.index("a4")
        assert order.index("c1") < order.index("a4")

    def test_health_reports_breakers_and_degradations(
        self, make_server
    ):
        handle = make_server(faults="seed=5;cache_corrupt=0.5")
        with client_for(handle) as client:
            resp = client.health()
            assert resp["ok"]
            vitals = resp["result"]
            assert vitals["state"] == "serving"
            assert vitals["fault_plan"] == "seed=5;cache_corrupt=0.5"
            assert "breakers" in vitals
            assert set(vitals["degraded"]) >= {
                "fallbacks", "timeouts", "cache_corrupt",
                "too_large", "cancelled",
            }
            assert vitals["queue"]["depth"] == 0


# -- a real SIGKILL, not an injected one ----------------------------------

SIGKILL_SCRIPT = r"""
import os, signal, sys, threading, time

from repro.core import AllocatorConfig
from repro.engine import AllocationEngine, EngineConfig
from repro.lang import compile_program
from repro.obs import set_stats_enabled, snapshot
from repro.target import x86_target

set_stats_enabled(True)

SOURCE = """ + '"""' + """
int helper(int a) { return a * 3; }
int mix(int a, int b) { int t = a * b; return t + a - b; }
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i += 1) { s += helper(i) + mix(i, n); }
    return s;
}
""" + '"""' + r"""

module = compile_program(SOURCE, name="sigkill")
engine = AllocationEngine(
    x86_target(),
    AllocatorConfig(time_limit=30.0),
    EngineConfig(jobs=2, retries=3),
)


def assassin():
    # Kill live pool workers until the allocation finishes: whatever
    # is mid-solve dies with a real SIGKILL, repeatedly.
    deadline = time.monotonic() + 20.0
    while not done.is_set() and time.monotonic() < deadline:
        for child in list(children()):
            try:
                os.kill(child, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        time.sleep(0.05)


def children():
    out = []
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            with open(f"/proc/{pid}/stat") as h:
                parts = h.read().split()
            if int(parts[3]) == os.getpid():
                out.append(int(pid))
        except (OSError, IndexError, ValueError):
            pass
    return out


done = threading.Event()
killer = threading.Thread(target=assassin, daemon=True)
killer.start()
outcomes = list(engine.allocate_module(list(module)))
done.set()
killer.join(timeout=5.0)

assert len(outcomes) == len(list(module)), "functions dropped"
for o in outcomes:
    assert o.final is not None, f"{o.function} has no allocation"
counters = snapshot()
crashes = counters.get("resilience.worker_crashes", 0)
assert crashes >= 1, f"no crash observed: {counters}"
print(f"SIGKILL-SURVIVED crashes={crashes:g} "
      f"functions={len(outcomes)}")
"""


class TestRealWorkerDeath:
    def test_sigkilled_workers_do_not_kill_the_module(self, tmp_path):
        """SIGKILL pool workers from outside while a module allocates:
        the run must complete every function (solved or degraded,
        never dropped) and count the crashes."""
        script = tmp_path / "sigkill_chaos.py"
        script.write_text(SIGKILL_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), "..", "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        env.pop("REPRO_FAULTS", None)
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, timeout=240, env=env,
        )
        assert proc.returncode == 0, (
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
        assert "SIGKILL-SURVIVED" in proc.stdout
