"""§4 — pure code-size optimisation mode.

"If the goal is to optimize purely for program size, the cycle and the
data memory components of the cost can be excluded entirely ... useful,
for instance, in embedded applications."
"""

import pytest

from repro.allocation import allocation_code_size, validate_allocation
from repro.analysis import profiled_frequencies
from repro.bench import load_benchmark
from repro.core import AllocatorConfig, IPAllocator
from repro.sim import AllocatedFunction, Interpreter


def allocate_all(module, target, config, profile):
    out = {}
    allocs = {}
    for fn in module:
        freq = profiled_frequencies(fn, profile.blocks_of(fn.name))
        a = IPAllocator(target, config).allocate(fn, freq)
        assert a.succeeded, fn.name
        validate_allocation(a, target)
        out[fn.name] = a
        allocs[fn.name] = AllocatedFunction(a.function, a.assignment)
    return out, allocs


@pytest.fixture(scope="module")
def runs(x86):
    bench, module = load_benchmark("compress")
    profile = Interpreter(module).run(bench.entry, list(bench.args))

    speed_cfg = AllocatorConfig(time_limit=64.0)
    size_cfg = AllocatorConfig(time_limit=64.0, optimize_size_only=True)

    speed, speed_allocs = allocate_all(module, x86, speed_cfg, profile)
    size, size_allocs = allocate_all(module, x86, size_cfg, profile)

    speed_run = Interpreter(
        module, target=x86, allocations=speed_allocs
    ).run(bench.entry, list(bench.args))
    size_run = Interpreter(
        module, target=x86, allocations=size_allocs
    ).run(bench.entry, list(bench.args))
    return {
        "module": module,
        "profile": profile,
        "speed": speed,
        "size": size,
        "speed_run": speed_run,
        "size_run": size_run,
    }


class TestSizeOptimisation:
    def test_both_modes_correct(self, runs):
        ref = runs["profile"].return_value
        assert runs["speed_run"].return_value == ref
        assert runs["size_run"].return_value == ref

    def test_size_mode_never_bigger(self, runs, x86):
        speed_bytes = sum(
            allocation_code_size(a, x86) for a in runs["speed"].values()
        )
        size_bytes = sum(
            allocation_code_size(a, x86) for a in runs["size"].values()
        )
        assert size_bytes <= speed_bytes

    def test_speed_mode_never_slower(self, runs):
        # The speed-mode objective includes cycles; size mode ignores
        # them, so dynamic cycles in size mode must not undercut speed
        # mode (modulo ties).
        assert runs["speed_run"].cycles <= runs["size_run"].cycles + 1e-9

    def test_code_size_metric_sane(self, runs, x86):
        for alloc in runs["speed"].values():
            bytes_ = allocation_code_size(alloc, x86)
            n = alloc.function.n_instructions
            assert n <= bytes_ <= 12 * n
