"""Shared fixtures: small IR functions and targets used across tests."""

import pytest

from repro.ir import Cond, IRBuilder, Module, SlotKind, verify_function
from repro.target import risc_target, x86_target


@pytest.fixture(scope="session")
def x86():
    return x86_target()


@pytest.fixture(scope="session")
def x86_ebp():
    return x86_target(allow_ebp=True)


@pytest.fixture(scope="session")
def risc():
    return risc_target()


def build_loop_sum() -> Module:
    """sum(0..n) with a helper call: exercises loops, calls, params."""
    m = Module("fixtures")

    b = IRBuilder("double")
    pa = b.slot("a", kind=SlotKind.PARAM)
    b.block("entry")
    a = b.load(pa)
    b.ret(b.add(a, a))
    m.add_function(b.done())

    b = IRBuilder("sum")
    pn = b.slot("n", kind=SlotKind.PARAM)
    b.block("entry")
    n = b.load(pn)
    i = b.li(0, hint="i")
    s = b.li(0, hint="s")
    b.jump("head")
    b.block("head")
    b.cjump(Cond.LE, i, n, "body", "exit")
    b.block("body")
    b.copy_into(s, b.add(s, i))
    b.copy_into(i, b.add(i, b.imm(1)))
    b.jump("head")
    b.block("exit")
    d = b.call("double", [s])
    b.ret(d)
    fn = b.done()
    verify_function(fn)
    m.add_function(fn)
    return m


@pytest.fixture()
def loop_sum_module() -> Module:
    return build_loop_sum()
