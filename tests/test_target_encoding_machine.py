"""Tests for encoding irregularities (§5.4) and target constraints."""

from repro.ir import (
    I8,
    I32,
    Address,
    Immediate,
    Instr,
    MemorySlot,
    Opcode,
    SlotKind,
    VirtualRegister,
)
from repro.target import (
    SHORT_EAX_IMM_OPS,
    TABLE1,
    UNIFORM_ENCODING,
    X86_ENCODING,
    base_cycles,
    base_size,
    risc_target,
    x86_register_file,
    x86_target,
)


def v(name, type_=I32):
    return VirtualRegister(name, type_)


RF = x86_register_file()


class TestTable1:
    def test_paper_values(self):
        assert TABLE1["load"].cycles == 1 and TABLE1["load"].size == 3
        assert TABLE1["store"].cycles == 1 and TABLE1["store"].size == 3
        assert TABLE1["rematerialization"].cycles == 1
        assert TABLE1["rematerialization"].size == 3
        assert TABLE1["copy"].cycles == 1 and TABLE1["copy"].size == 2


class TestShortOpcodes:
    def test_eax_with_immediate_saves_a_byte(self):
        instr = Instr(Opcode.ADD, dst=v("d"),
                      srcs=(v("a"), Immediate(1, I32)))
        assert X86_ENCODING.short_opcode_saving(instr, RF["EAX"]) == 1
        assert X86_ENCODING.short_opcode_saving(instr, RF["EBX"]) == 0

    def test_applies_to_al_and_ax_too(self):
        instr = Instr(Opcode.ADD, dst=v("d", I8),
                      srcs=(v("a", I8), Immediate(1, I8)))
        assert X86_ENCODING.short_opcode_saving(instr, RF["AL"]) == 1
        assert X86_ENCODING.short_opcode_saving(instr, RF["AX"]) == 1

    def test_no_saving_without_immediate(self):
        instr = Instr(Opcode.ADD, dst=v("d"), srcs=(v("a"), v("b")))
        assert X86_ENCODING.short_opcode_saving(instr, RF["EAX"]) == 0

    def test_op_list(self):
        assert Opcode.ADD in SHORT_EAX_IMM_OPS
        assert Opcode.CJUMP in SHORT_EAX_IMM_OPS  # CMP
        assert Opcode.IMUL not in SHORT_EAX_IMM_OPS

    def test_uniform_encoding_disables(self):
        instr = Instr(Opcode.ADD, dst=v("d"),
                      srcs=(v("a"), Immediate(1, I32)))
        assert UNIFORM_ENCODING.short_opcode_saving(instr, RF["EAX"]) == 0


class TestAddressPenalties:
    def test_esp_base_penalty(self):
        addr = Address(base=v("p"))
        assert X86_ENCODING.address_penalty(addr, "base", RF["ESP"]) == 1
        assert X86_ENCODING.address_penalty(addr, "base", RF["EAX"]) == 0

    def test_plain_ebp_penalty(self):
        bare = Address(base=v("p"))
        assert X86_ENCODING.address_penalty(bare, "base", RF["EBP"]) == 1
        # With a displacement or slot the [EBP] special case vanishes.
        disp = Address(base=v("p"), disp=4)
        assert X86_ENCODING.address_penalty(disp, "base", RF["EBP"]) == 0

    def test_esp_scaled_index_excluded(self):
        addr = Address(index=v("i"), scale=4)
        assert X86_ENCODING.excluded_from_address(addr, "index", RF["ESP"])
        assert not X86_ENCODING.excluded_from_address(
            addr, "index", RF["EAX"]
        )

    def test_unscaled_index_not_excluded(self):
        addr = Address(base=v("b"), index=v("i"), scale=1)
        assert not X86_ENCODING.excluded_from_address(
            addr, "index", RF["ESP"]
        )


class TestTargetConstraints:
    def setup_method(self):
        self.t = x86_target()

    def test_alu_two_address_with_mem(self):
        rules = self.t.constraints(
            Instr(Opcode.ADD, dst=v("d"), srcs=(v("a"), v("b")))
        )
        assert rules.two_address and rules.rmw_mem_ok
        assert all(r.mem_ok for r in rules.src_rules)

    def test_shift_count_in_cl(self):
        rules = self.t.constraints(
            Instr(Opcode.SHL, dst=v("d"), srcs=(v("a"), v("c")))
        )
        assert rules.src_rules[1].families == frozenset({"C"})

    def test_div_implicit_registers(self):
        rules = self.t.constraints(
            Instr(Opcode.DIV, dst=v("q"), srcs=(v("a"), v("b")))
        )
        assert rules.src_rules[0].families == frozenset({"A"})
        assert rules.src_rules[1].exclude_families == frozenset({"A", "D"})
        assert rules.dst_rule.families == frozenset({"A"})
        assert rules.clobber_families == frozenset({"D"})

    def test_mod_result_in_edx(self):
        rules = self.t.constraints(
            Instr(Opcode.MOD, dst=v("r"), srcs=(v("a"), v("b")))
        )
        assert rules.dst_rule.families == frozenset({"D"})
        assert rules.clobber_families == frozenset({"A"})

    def test_call_clobbers_and_result(self):
        rules = self.t.constraints(
            Instr(Opcode.CALL, dst=v("r"), callee="f")
        )
        assert rules.clobber_families == frozenset({"A", "C", "D"})
        assert rules.dst_rule.families == frozenset({"A"})

    def test_ret_value_in_eax(self):
        rules = self.t.constraints(Instr(Opcode.RET, srcs=(v("r"),)))
        assert rules.src_rules[0].families == frozenset({"A"})

    def test_admissible_by_width(self):
        assert {r.name for r in self.t.allocatable(32)} == {
            "EAX", "EBX", "ECX", "EDX", "ESI", "EDI",
        }
        assert {r.name for r in self.t.allocatable(8)} == {
            "AL", "AH", "BL", "BH", "CL", "CH", "DL", "DH",
        }
        assert "ESP" not in {r.name for r in self.t.allocatable(32)}

    def test_ebp_option(self):
        t = x86_target(allow_ebp=True)
        assert "EBP" in {r.name for r in t.allocatable(32)}
        assert t.n_allocatable_families == 7


class TestRiscTarget:
    def test_uniform(self):
        t = risc_target()
        assert t.n_allocatable_families == 24
        assert not t.irregular and not t.mem_operands

    def test_width_blind(self):
        t = risc_target()
        assert t.allocatable(8) == t.allocatable(32)

    def test_three_address(self):
        rules = risc_target().constraints(
            Instr(Opcode.ADD, dst=v("d"), srcs=(v("a"), v("b")))
        )
        assert not rules.two_address and not rules.rmw_mem_ok

    def test_calling_convention(self):
        t = risc_target()
        rules = t.constraints(Instr(Opcode.CALL, dst=v("r"), callee="f"))
        assert rules.dst_rule.families == frozenset({"r0"})
        assert len(rules.clobber_families) == 12


class TestBaseCosts:
    def test_call_scales_with_args(self):
        short = Instr(Opcode.CALL, dst=v("r"), callee="f")
        long = Instr(Opcode.CALL, dst=v("r"),
                     srcs=(v("a"), v("b"), v("c")), callee="f")
        assert base_cycles(long) == base_cycles(short) + 3
        assert base_size(long) == base_size(short) + 3

    def test_immediate_grows_size(self):
        rr = Instr(Opcode.ADD, dst=v("d"), srcs=(v("a"), v("b")))
        ri = Instr(Opcode.ADD, dst=v("d"),
                   srcs=(v("a"), Immediate(1, I32)))
        assert base_size(ri) > base_size(rr)

    def test_division_is_expensive(self):
        div = Instr(Opcode.DIV, dst=v("q"), srcs=(v("a"), v("b")))
        add = Instr(Opcode.ADD, dst=v("d"), srcs=(v("a"), v("b")))
        assert base_cycles(div) > 10 * base_cycles(add)
