"""Printer/parser round-trip tests."""

import pytest

from repro.ir import (
    Cond,
    I8,
    I16,
    I32,
    IRBuilder,
    ParseError,
    SlotKind,
    format_function,
    format_module,
    parse_function,
    parse_module,
    verify_function,
)
from repro.bench.generator import generate_module


def roundtrip(fn):
    text = format_function(fn)
    fn2 = parse_function(text)
    assert format_function(fn2) == text
    return fn2


class TestRoundTrip:
    def test_simple(self):
        b = IRBuilder("f")
        px = b.slot("x", kind=SlotKind.PARAM)
        b.block("entry")
        x = b.load(px)
        b.ret(b.add(x, b.imm(1)))
        roundtrip(b.done())

    def test_all_widths(self):
        b = IRBuilder("w")
        b.block("entry")
        c = b.li(5, I8)
        s = b.sext(c, I16)
        i = b.sext(s, I32)
        t = b.trunc(i, I8)
        b.ret(b.sext(t, I32))
        fn = roundtrip(b.done())
        verify_function(fn)

    def test_control_flow(self):
        b = IRBuilder("cf")
        pn = b.slot("n", kind=SlotKind.PARAM)
        b.block("entry")
        n = b.load(pn)
        b.cjump(Cond.GT, n, b.imm(0), "pos", "neg")
        b.block("pos")
        b.ret(n)
        b.block("neg")
        b.ret(b.neg(n))
        roundtrip(b.done())

    def test_arrays_and_addressing(self):
        b = IRBuilder("arr")
        arr = b.slot("a", I32, SlotKind.ARRAY, count=8)
        pi = b.slot("i", kind=SlotKind.PARAM)
        b.block("entry")
        i = b.load(pi)
        from repro.ir import Address

        v = b.load(Address(slot=arr, index=i, scale=4), I32)
        b.store(Address(slot=arr, base=i, disp=4), v)
        b.ret(v)
        fn = roundtrip(b.done())
        verify_function(fn)

    def test_calls(self):
        b = IRBuilder("callers")
        b.block("entry")
        r = b.call("callee", [b.imm(1), b.imm(2)])
        b.ret(r)
        roundtrip(b.done())

    def test_module_roundtrip(self):
        from repro.ir import Module, MemorySlot

        m = Module("m")
        m.add_global(MemorySlot("g", I32, SlotKind.GLOBAL))
        m.add_global(MemorySlot("arr", I16, SlotKind.ARRAY, count=5))
        b = IRBuilder("f")
        b.block("entry")
        b.ret(b.li(1))
        m.add_function(b.done())
        text = format_module(m)
        m2 = parse_module(text)
        assert format_module(m2) == text
        assert m2.globals["arr"].count == 5

    @pytest.mark.parametrize("seed", range(5))
    def test_generated_programs_roundtrip(self, seed):
        from repro.bench.generator import GeneratorConfig

        module = generate_module(
            seed, GeneratorConfig(n_functions=2, body_statements=(2, 6))
        )
        for fn in module:
            roundtrip(fn)


class TestParseErrors:
    def test_unknown_opcode(self):
        with pytest.raises(ParseError):
            parse_function("func @f() -> i32 {\nentry:\n  frob %x:i32\n}")

    def test_unknown_slot(self):
        with pytest.raises(ParseError):
            parse_function(
                "func @f() -> i32 {\nentry:\n  load %x:i32, [@nope]\n"
                "  ret %x:i32\n}"
            )

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_function("func @f() -> i32 { $ }")

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            parse_function("func @f() -> i64 {\nentry:\n  ret\n}")
