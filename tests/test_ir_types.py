"""Tests for repro.ir.types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import ALL_TYPES, I8, I16, I32, IntType, type_from_name


class TestIntType:
    def test_widths(self):
        assert I8.bits == 8 and I8.bytes == 1
        assert I16.bits == 16 and I16.bytes == 2
        assert I32.bits == 32 and I32.bytes == 4

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(12)
        with pytest.raises(ValueError):
            IntType(64)

    def test_ranges(self):
        assert I8.min_value == -128 and I8.max_value == 127
        assert I16.min_value == -32768 and I16.max_value == 32767
        assert I32.min_value == -(2 ** 31)
        assert I32.max_value == 2 ** 31 - 1

    def test_contains(self):
        assert I8.contains(127) and not I8.contains(128)
        assert I8.contains(-128) and not I8.contains(-129)

    def test_equality_and_hash(self):
        assert I8 == IntType(8)
        assert hash(I8) == hash(IntType(8))
        assert I8 != I16

    def test_str(self):
        assert str(I32) == "i32"
        assert str(I8) == "i8"

    def test_from_name(self):
        for t in ALL_TYPES:
            assert type_from_name(str(t)) == t
        with pytest.raises(ValueError):
            type_from_name("i64")


class TestWrap:
    def test_wrap_identity_in_range(self):
        assert I8.wrap(100) == 100
        assert I8.wrap(-100) == -100

    def test_wrap_overflow(self):
        assert I8.wrap(128) == -128
        assert I8.wrap(255) == -1
        assert I8.wrap(256) == 0
        assert I16.wrap(65535) == -1
        assert I32.wrap(2 ** 31) == -(2 ** 31)

    def test_wrap_underflow(self):
        assert I8.wrap(-129) == 127
        assert I8.wrap(-256) == 0

    @given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    def test_wrap_is_idempotent(self, value):
        for t in ALL_TYPES:
            wrapped = t.wrap(value)
            assert t.contains(wrapped)
            assert t.wrap(wrapped) == wrapped

    @given(st.integers(), st.integers())
    def test_wrap_is_congruent_mod_2n(self, a, b):
        for t in ALL_TYPES:
            if (a - b) % (1 << t.bits) == 0:
                assert t.wrap(a) == t.wrap(b)
