"""Tests for live-variable analysis, including a naive oracle check."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import build_cfg, compute_liveness
from repro.bench.generator import GeneratorConfig, generate_module
from repro.ir import Cond, IRBuilder, SlotKind


def straightline():
    b = IRBuilder("s")
    pn = b.slot("n", kind=SlotKind.PARAM)
    b.block("entry")
    n = b.load(pn)
    a = b.add(n, b.imm(1), hint="a")
    c = b.mul(a, n, hint="c")
    b.ret(c)
    return b.done(), (n, a, c)


class TestStraightline:
    def test_dies_at(self):
        fn, (n, a, c) = straightline()
        lv = compute_liveness(fn)
        # n dies at the mul (index 2), a dies there too.
        assert n in lv.dies_at("entry", 2)
        assert a in lv.dies_at("entry", 2)
        assert c in lv.dies_at("entry", 3)

    def test_live_after(self):
        fn, (n, a, c) = straightline()
        lv = compute_liveness(fn)
        assert set(lv.live_after("entry", 0)) == {n}
        assert set(lv.live_after("entry", 1)) == {n, a}
        assert set(lv.live_after("entry", 2)) == {c}
        assert set(lv.live_after("entry", 3)) == set()

    def test_live_before(self):
        fn, (n, a, c) = straightline()
        lv = compute_liveness(fn)
        assert set(lv.live_before("entry", 1)) == {n}
        assert set(lv.live_before("entry", 2)) == {n, a}


class TestLoop:
    def test_loop_carried_live_through(self, loop_sum_module):
        fn = loop_sum_module.functions["sum"]
        lv = compute_liveness(fn)
        names_in_head = {v.name for v in lv.live_in["head"]}
        assert {"i", "s", "t"} <= names_in_head  # t holds n


def naive_live_before(fn, block_name, index):
    """Oracle: a register is live before (b, i) if some path from there
    reaches a use before any def.  Computed by BFS over program points."""
    from collections import deque

    fn_blocks = {b.name: b for b in fn.blocks}
    cfg = build_cfg(fn)
    live = set()
    for candidate in fn.vregs():
        seen = set()
        queue = deque([(block_name, index)])
        found = False
        while queue and not found:
            bname, i = queue.popleft()
            if (bname, i) in seen:
                continue
            seen.add((bname, i))
            block = fn_blocks[bname]
            if i >= len(block.instrs):
                for s in cfg.succs[bname]:
                    queue.append((s, 0))
                continue
            instr = block.instrs[i]
            if candidate in instr.uses():
                found = True
                break
            if candidate in instr.defs():
                continue  # killed on this path
            queue.append((bname, i + 1))
        if found:
            live.add(candidate)
    return live


class TestAgainstOracle:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_programs_match_oracle(self, seed):
        module = generate_module(
            seed,
            GeneratorConfig(n_functions=1, body_statements=(2, 5)),
        )
        for fn in module:
            lv = compute_liveness(fn)
            rng = random.Random(seed)
            points = [
                (b.name, i)
                for b in fn.blocks for i in range(len(b.instrs))
            ]
            for bname, i in rng.sample(points, min(5, len(points))):
                expected = naive_live_before(fn, bname, i)
                got = set(lv.live_before(bname, i))
                assert got == expected, (fn.name, bname, i)
